//! bitBSR: the paper's bitmap-based blocked sparse format (§4.2).
//!
//! The matrix is divided into 8×8 blocks whose positions are encoded as a
//! CSR over the block grid. Each non-empty block stores:
//!
//! * a **64-bit bitmap** — bit `dr * 8 + dc` set iff element `(dr, dc)` of
//!   the block is nonzero; "the least and most significant bits correspond
//!   to the top-left and bottom-right elements" (Figure 4);
//! * its nonzero **values packed consecutively in f16** (tensor-core input
//!   precision — this is what yields the paper's 2.85 bytes/nnz);
//! * an offset into the value array, obtained by an exclusive scan over
//!   per-block nonzero counts ("It enables the quick location of the
//!   starting index of each block in the value array").

use spaden_gpusim::half::F16;
use spaden_sparse::csr::Csr;
use spaden_sparse::gen::BLOCK_DIM;
use spaden_sparse::par;
use spaden_sparse::stats::{BlockClass, BlockProfile};
use spaden_sparse::types::{validate_offsets, SparseError, SparseResult};

/// A sparse matrix in bitBSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct BitBsr {
    /// Rows of the original matrix.
    pub nrows: usize,
    /// Columns of the original matrix.
    pub ncols: usize,
    /// Block rows (`Bnrow` = `ceil(nrows / 8)`).
    pub block_rows: usize,
    /// Block columns.
    pub block_cols_dim: usize,
    /// `block_rows + 1` offsets into `block_cols` / `bitmaps`.
    pub block_row_ptr: Vec<u32>,
    /// Block-column index per non-empty block (`Bnnz` entries).
    pub block_cols: Vec<u32>,
    /// Occupancy bitmap per block, LSB = top-left element.
    pub bitmaps: Vec<u64>,
    /// `Bnnz + 1` exclusive-scanned nonzero counts: block `k`'s values are
    /// `values[block_offsets[k] .. block_offsets[k + 1]]`.
    pub block_offsets: Vec<u32>,
    /// All nonzero values in block order, bit order within a block, f16.
    pub values: Vec<F16>,
}

impl BitBsr {
    /// Converts from CSR (parallel over block-rows).
    ///
    /// Values are rounded to f16 here, once, at conversion time — exactly
    /// like the CUDA implementation, which converts while building the
    /// device arrays.
    pub fn from_csr(csr: &Csr) -> Self {
        let block_rows = csr.nrows.div_ceil(BLOCK_DIM);
        let block_cols_dim = csr.ncols.div_ceil(BLOCK_DIM);

        // Pass 1: per block-row, sorted (block col, bitmap) pairs.
        let per_row: Vec<Vec<(u32, u64)>> = par::map_indexed(block_rows, |br| {
            let mut blocks: Vec<(u32, u64)> = Vec::new();
            let r_end = ((br + 1) * BLOCK_DIM).min(csr.nrows);
            for r in br * BLOCK_DIM..r_end {
                let dr = r - br * BLOCK_DIM;
                let (cols, _) = csr.row(r);
                for &c in cols {
                    let bc = c / BLOCK_DIM as u32;
                    let dc = (c as usize) % BLOCK_DIM;
                    let bit = 1u64 << (dr * BLOCK_DIM + dc);
                    match blocks.binary_search_by_key(&bc, |e| e.0) {
                        Ok(i) => blocks[i].1 |= bit,
                        Err(i) => blocks.insert(i, (bc, bit)),
                    }
                }
            }
            blocks
        });

        let counts: Vec<u32> = per_row.iter().map(|b| b.len() as u32).collect();
        let block_row_ptr = spaden_sparse::scan::exclusive_scan_par(&counts);
        let bnnz = *block_row_ptr.last().expect("scan non-empty") as usize;

        let mut block_cols = vec![0u32; bnnz];
        let mut bitmaps = vec![0u64; bnnz];
        {
            let mut cursor = 0usize;
            for blocks in &per_row {
                for &(bc, bmp) in blocks {
                    block_cols[cursor] = bc;
                    bitmaps[cursor] = bmp;
                    cursor += 1;
                }
            }
        }

        // Exclusive scan over per-block popcounts -> value offsets.
        let popcounts: Vec<u32> = par::map_indexed(bitmaps.len(), |i| bitmaps[i].count_ones());
        let block_offsets = spaden_sparse::scan::exclusive_scan_par(&popcounts);
        let nnz = *block_offsets.last().expect("scan non-empty") as usize;

        // Pass 2: place values. Each block-row owns a disjoint value range.
        let mut values = vec![F16::ZERO; nnz];
        {
            let ranges: Vec<(usize, usize, usize)> = (0..block_rows)
                .map(|br| {
                    let blo = block_row_ptr[br] as usize;
                    let bhi = block_row_ptr[br + 1] as usize;
                    (br, block_offsets[blo] as usize, if blo == bhi { 0 } else { blo })
                })
                .collect();
            let mut slices: Vec<&mut [F16]> = Vec::with_capacity(block_rows);
            let mut rest: &mut [F16] = &mut values;
            for br in 0..block_rows {
                let blo = block_row_ptr[br] as usize;
                let bhi = block_row_ptr[br + 1] as usize;
                let len = (block_offsets[bhi] - block_offsets[blo]) as usize;
                let (s, r) = rest.split_at_mut(len);
                slices.push(s);
                rest = r;
            }
            drop(ranges);
            par::for_each_item(slices, |br, out| {
                let blo = block_row_ptr[br] as usize;
                let base = block_offsets[blo] as usize;
                let blocks = &per_row[br];
                let r_end = ((br + 1) * BLOCK_DIM).min(csr.nrows);
                for r in br * BLOCK_DIM..r_end {
                    let dr = r - br * BLOCK_DIM;
                    let (cols, vals) = csr.row(r);
                    for (c, v) in cols.iter().zip(vals) {
                        let bc = c / BLOCK_DIM as u32;
                        let k = blocks
                            .binary_search_by_key(&bc, |e| e.0)
                            .expect("block recorded in pass 1");
                        let bit_idx = dr * BLOCK_DIM + (*c as usize) % BLOCK_DIM;
                        let bmp = blocks[k].1;
                        let within = (bmp & ((1u64 << bit_idx) - 1)).count_ones() as usize;
                        let off = block_offsets[blo + k] as usize - base + within;
                        out[off] = F16::from_f32(*v);
                    }
                }
            });
        }

        BitBsr {
            nrows: csr.nrows,
            ncols: csr.ncols,
            block_rows,
            block_cols_dim,
            block_row_ptr,
            block_cols,
            bitmaps,
            block_offsets,
            values,
        }
    }

    /// Non-empty block count (`Bnnz`).
    #[inline]
    pub fn bnnz(&self) -> usize {
        self.block_cols.len()
    }

    /// Stored nonzero count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros in block `k`.
    #[inline]
    pub fn block_nnz(&self, k: usize) -> usize {
        (self.block_offsets[k + 1] - self.block_offsets[k]) as usize
    }

    /// Device memory footprint in bytes — the quantity of Figure 10b.
    pub fn bytes(&self) -> usize {
        self.block_row_ptr.len() * 4
            + self.block_cols.len() * 4
            + self.bitmaps.len() * 8
            + self.block_offsets.len() * 4
            + self.values.len() * 2
    }

    /// Compression rate of the position encoding versus COO
    /// (`sizeof(COO positions) / sizeof(bitmap)`, §4.2: 1–64×).
    pub fn position_compression_rate(&self) -> f64 {
        if self.bnnz() == 0 {
            return 1.0;
        }
        (self.nnz() * 8) as f64 / (self.bnnz() * 8) as f64
    }

    /// Block class profile (Figure 9a) straight from the bitmaps.
    pub fn block_profile(&self) -> BlockProfile {
        let mut p = BlockProfile::default();
        for bmp in &self.bitmaps {
            let n = bmp.count_ones() as usize;
            p.nnz += n;
            match BlockClass::of(n) {
                BlockClass::Sparse => p.sparse += 1,
                BlockClass::Medium => p.medium += 1,
                BlockClass::Dense => p.dense += 1,
            }
        }
        p
    }

    /// Densifies block `k` into a row-major 8×8 array (decode reference).
    pub fn decode_block(&self, k: usize) -> [f32; BLOCK_DIM * BLOCK_DIM] {
        let mut out = [0.0f32; BLOCK_DIM * BLOCK_DIM];
        let bmp = self.bitmaps[k];
        let base = self.block_offsets[k] as usize;
        let mut idx = 0usize;
        for bit in 0..64 {
            if bmp & (1u64 << bit) != 0 {
                out[bit] = self.values[base + idx].to_f32();
                idx += 1;
            }
        }
        out
    }

    /// Converts back to CSR. Values carry the f16 rounding applied at
    /// conversion (lossless for values that were already f16-representable).
    pub fn to_csr(&self) -> Csr {
        let mut coo = spaden_sparse::coo::Coo::new(self.nrows, self.ncols);
        for br in 0..self.block_rows {
            let lo = self.block_row_ptr[br] as usize;
            let hi = self.block_row_ptr[br + 1] as usize;
            for k in lo..hi {
                let bc = self.block_cols[k] as usize;
                let dense = self.decode_block(k);
                for (bit, &v) in dense.iter().enumerate() {
                    if self.bitmaps[k] & (1u64 << bit) != 0 {
                        let r = br * BLOCK_DIM + bit / BLOCK_DIM;
                        let c = bc * BLOCK_DIM + bit % BLOCK_DIM;
                        coo.push(r as u32, c as u32, v);
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Reference SpMV over the decoded blocks (the correctness oracle the
    /// simulated kernels are tested against).
    pub fn spmv_reference(&self, x: &[f32]) -> SparseResult<Vec<f32>> {
        if x.len() != self.ncols {
            return Err(SparseError::ShapeMismatch {
                what: format!("x.len() = {}, ncols = {}", x.len(), self.ncols),
            });
        }
        let mut y = vec![0.0f32; self.nrows];
        for br in 0..self.block_rows {
            let lo = self.block_row_ptr[br] as usize;
            let hi = self.block_row_ptr[br + 1] as usize;
            for k in lo..hi {
                let bc = self.block_cols[k] as usize;
                let dense = self.decode_block(k);
                for dr in 0..BLOCK_DIM {
                    let r = br * BLOCK_DIM + dr;
                    if r >= self.nrows {
                        break;
                    }
                    let mut acc = 0.0f32;
                    for dc in 0..BLOCK_DIM {
                        let c = bc * BLOCK_DIM + dc;
                        if c < self.ncols {
                            acc += dense[dr * BLOCK_DIM + dc]
                                * F16::round_f32(x[c]);
                        }
                    }
                    y[r] += acc;
                }
            }
        }
        Ok(y)
    }

    /// Extracts block-rows `lo..hi` as a standalone bitBSR matrix whose
    /// row 0 is global row `lo * BLOCK_DIM`. Column indices are untouched
    /// (a shard multiplies against the full `x`), so the concatenation of
    /// per-shard SpMV outputs over a partition of the block-rows is
    /// exactly the full matrix's output.
    pub fn slice_block_rows(&self, lo: usize, hi: usize) -> BitBsr {
        assert!(lo <= hi && hi <= self.block_rows, "slice {lo}..{hi} of {}", self.block_rows);
        let b_lo = self.block_row_ptr[lo] as usize;
        let b_hi = self.block_row_ptr[hi] as usize;
        let v_lo = self.block_offsets[b_lo];
        let v_hi = self.block_offsets[b_hi] as usize;
        let nrows = if hi == self.block_rows {
            self.nrows.saturating_sub(lo * BLOCK_DIM)
        } else {
            (hi - lo) * BLOCK_DIM
        };
        BitBsr {
            nrows,
            ncols: self.ncols,
            block_rows: hi - lo,
            block_cols_dim: self.block_cols_dim,
            block_row_ptr: self.block_row_ptr[lo..=hi]
                .iter()
                .map(|&p| p - b_lo as u32)
                .collect(),
            block_cols: self.block_cols[b_lo..b_hi].to_vec(),
            bitmaps: self.bitmaps[b_lo..b_hi].to_vec(),
            block_offsets: self.block_offsets[b_lo..=b_hi].iter().map(|&o| o - v_lo).collect(),
            values: self.values[v_lo as usize..v_hi].to_vec(),
        }
    }

    /// Structural invariants check.
    pub fn validate(&self) -> SparseResult<()> {
        validate_offsets(&self.block_row_ptr, self.bnnz(), "block_row_ptr")?;
        validate_offsets(&self.block_offsets, self.nnz(), "block_offsets")?;
        spaden_sparse::types::validate_indices(
            &self.block_cols,
            self.block_cols_dim,
            "block_cols",
        )?;
        for (k, &bmp) in self.bitmaps.iter().enumerate() {
            let want = (self.block_offsets[k + 1] - self.block_offsets[k]) as usize;
            if bmp.count_ones() as usize != want {
                return Err(SparseError::LengthMismatch {
                    what: format!(
                        "block {k}: popcount {} != offset span {want}",
                        bmp.count_ones()
                    ),
                });
            }
            if bmp == 0 {
                return Err(SparseError::LengthMismatch {
                    what: format!("block {k} is empty"),
                });
            }
        }
        Ok(())
    }
}

/// What a bitBSR-style format would cost at a different block size — the
/// §4.2 design-space analysis behind the choice of 8×8 / u64 ("the block
/// size affects the compression rate, as larger sizes will retain more
/// zero bits within the blocks").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSizeAnalysis {
    /// Block edge length analysed.
    pub dim: usize,
    /// Non-empty blocks at this size.
    pub blocks: usize,
    /// Bitmap bytes per block (`dim² / 8`).
    pub bitmap_bytes: usize,
    /// Total format bytes (block CSR + bitmaps + offsets + f16 values).
    pub total_bytes: usize,
    /// Mean nonzeros per non-empty block.
    pub mean_fill: f64,
}

impl BlockSizeAnalysis {
    /// Bytes per nonzero at this block size.
    pub fn bytes_per_nnz(&self, nnz: usize) -> f64 {
        self.total_bytes as f64 / nnz.max(1) as f64
    }
}

/// Analyses the bitmap-format footprint of `csr` for an alternative block
/// edge `dim` (e.g. 4 → u16 bitmaps, 8 → u64, 16 → four u64 words).
pub fn analyze_block_size(csr: &Csr, dim: usize) -> BlockSizeAnalysis {
    assert!(dim.is_power_of_two() && (2..=64).contains(&dim));
    let block_rows = csr.nrows.div_ceil(dim);
    let blocks: usize = par::map_indexed(block_rows, |br| {
        let mut cols: Vec<u32> = Vec::new();
        let r_end = ((br + 1) * dim).min(csr.nrows);
        for r in br * dim..r_end {
            let (ci, _) = csr.row(r);
            for &c in ci {
                let bc = c / dim as u32;
                if let Err(i) = cols.binary_search(&bc) {
                    cols.insert(i, bc);
                }
            }
        }
        cols.len()
    })
    .into_iter()
    .sum();
    // Bitmaps are whole bytes, minimum one machine-friendly word of
    // dim²/8 bytes (4x4 -> u16, 8x8 -> u64, 16x16 -> 32 bytes).
    let bitmap_bytes = (dim * dim).div_ceil(8);
    let total_bytes = (block_rows + 1) * 4           // block_row_ptr
        + blocks * (4 + bitmap_bytes + 4)            // col + bitmap + offset
        + csr.nnz() * 2; // f16 values
    BlockSizeAnalysis {
        dim,
        blocks,
        bitmap_bytes,
        total_bytes,
        mean_fill: if blocks == 0 { 0.0 } else { csr.nnz() as f64 / blocks as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn round_csr_to_f16(csr: &Csr) -> Csr {
        let mut c = csr.clone();
        for v in &mut c.values {
            *v = F16::round_f32(*v);
        }
        c
    }

    #[test]
    fn figure4_bit_order() {
        // A single block with only element (0,0) set: row0 = 0x01.
        let csr = Csr::new(8, 8, vec![0, 1, 1, 1, 1, 1, 1, 1, 1], vec![0], vec![2.0]).unwrap();
        let b = BitBsr::from_csr(&csr);
        assert_eq!(b.bnnz(), 1);
        assert_eq!(b.bitmaps[0], 0x01, "LSB is the top-left element");
        // Bottom-right element -> MSB.
        let csr2 = Csr::new(8, 8, vec![0, 0, 0, 0, 0, 0, 0, 0, 1], vec![7], vec![3.0]).unwrap();
        let b2 = BitBsr::from_csr(&csr2);
        assert_eq!(b2.bitmaps[0], 1u64 << 63, "MSB is the bottom-right element");
    }

    #[test]
    fn roundtrip_equals_f16_rounded_csr() {
        let csr = gen::random_uniform(100, 90, 800, 91);
        let b = BitBsr::from_csr(&csr);
        assert!(b.validate().is_ok());
        assert_eq!(b.to_csr(), round_csr_to_f16(&csr));
    }

    #[test]
    fn roundtrip_blocked() {
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Banded { bandwidth: 8 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            93,
        );
        let b = BitBsr::from_csr(&csr);
        assert_eq!(b.nnz(), csr.nnz());
        assert_eq!(b.to_csr(), round_csr_to_f16(&csr));
    }

    #[test]
    fn block_structure_matches_bsr() {
        let csr = gen::generate_blocked(
            256,
            120,
            Placement::Scattered,
            &FillDist::Uniform { lo: 1, hi: 40 },
            95,
        );
        let bsr = spaden_sparse::bsr::Bsr::from_csr(&csr);
        let bit = BitBsr::from_csr(&csr);
        assert_eq!(bit.bnnz(), bsr.bnnz());
        assert_eq!(bit.block_row_ptr, bsr.block_row_ptr);
        assert_eq!(bit.block_cols, bsr.block_cols);
    }

    #[test]
    fn decode_block_matches_bsr_block() {
        let csr = gen::generate_blocked(
            128,
            40,
            Placement::Scattered,
            &FillDist::Uniform { lo: 5, hi: 60 },
            97,
        );
        let bsr = spaden_sparse::bsr::Bsr::from_csr(&csr);
        let bit = BitBsr::from_csr(&csr);
        for k in 0..bit.bnnz() {
            let d = bit.decode_block(k);
            let b = bsr.block(k);
            for i in 0..64 {
                assert_eq!(d[i], F16::round_f32(b[i]), "block {k} elem {i}");
            }
        }
    }

    #[test]
    fn offsets_are_popcount_scan() {
        let csr = gen::random_uniform(64, 64, 500, 99);
        let b = BitBsr::from_csr(&csr);
        let mut acc = 0u32;
        for (k, &bmp) in b.bitmaps.iter().enumerate() {
            assert_eq!(b.block_offsets[k], acc);
            acc += bmp.count_ones();
        }
        assert_eq!(*b.block_offsets.last().unwrap(), acc);
        assert_eq!(acc as usize, csr.nnz());
    }

    #[test]
    fn spmv_reference_matches_csr_within_f16_error() {
        let csr = gen::generate_blocked(
            256,
            150,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 4, hi: 50 },
            101,
        );
        let b = BitBsr::from_csr(&csr);
        let x: Vec<f32> = (0..256).map(|i| ((i * 13 % 31) as f32) * 0.125).collect();
        let y = b.spmv_reference(&x).unwrap();
        let oracle = csr.spmv_f64(&x).unwrap();
        for (r, (a, o)) in y.iter().zip(&oracle).enumerate() {
            let scale = csr.row_nnz(r) as f64 * 8.0; // |v|<=1, |x|<=8
            let tol = 2.0f64.powi(-11) * 2.0 * scale + 1e-4;
            assert!((*a as f64 - o).abs() <= tol, "row {r}: {a} vs {o}");
        }
    }

    #[test]
    fn bytes_per_nnz_beats_bsr_and_csr_on_typical_fill() {
        // Mean fill ~22 (the FEM matrices): bitBSR ~2.7 B/nnz vs CSR ~8,
        // BSR ~12+.
        let csr = gen::generate_blocked(
            1024,
            1200,
            Placement::Banded { bandwidth: 10 },
            &FillDist::Uniform { lo: 8, hi: 36 },
            103,
        );
        let bit = BitBsr::from_csr(&csr);
        let bsr = spaden_sparse::bsr::Bsr::from_csr(&csr);
        let per_nnz = |bytes: usize| bytes as f64 / csr.nnz() as f64;
        assert!(per_nnz(bit.bytes()) < 3.5, "bitBSR {}", per_nnz(bit.bytes()));
        assert!(per_nnz(bit.bytes()) < per_nnz(csr.bytes()) / 2.0);
        assert!(per_nnz(bit.bytes()) < per_nnz(bsr.bytes()) / 3.0);
    }

    #[test]
    fn empty_matrix() {
        let b = BitBsr::from_csr(&Csr::empty(32, 32));
        assert_eq!(b.bnnz(), 0);
        assert_eq!(b.nnz(), 0);
        assert!(b.validate().is_ok());
        assert_eq!(b.spmv_reference(&[0.0; 32]).unwrap(), vec![0.0; 32]);
    }

    #[test]
    fn non_multiple_of_eight_dimensions() {
        let csr = gen::random_uniform(101, 77, 600, 105);
        let b = BitBsr::from_csr(&csr);
        assert_eq!(b.block_rows, 13);
        assert_eq!(b.block_cols_dim, 10);
        assert!(b.validate().is_ok());
        assert_eq!(b.to_csr(), round_csr_to_f16(&csr));
    }

    #[test]
    fn block_profile_matches_stats_module() {
        let csr = gen::generate_blocked(
            512,
            400,
            Placement::Scattered,
            &FillDist::Uniform { lo: 1, hi: 64 },
            107,
        );
        let from_bitbsr = BitBsr::from_csr(&csr).block_profile();
        let from_csr = spaden_sparse::stats::block_profile(&csr);
        assert_eq!(from_bitbsr, from_csr);
    }

    #[test]
    fn block_size_analysis_8_matches_real_format() {
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Banded { bandwidth: 8 },
            &FillDist::Uniform { lo: 4, hi: 40 },
            117,
        );
        let b = BitBsr::from_csr(&csr);
        let a = analyze_block_size(&csr, 8);
        assert_eq!(a.blocks, b.bnnz());
        // Analysis omits the final offset entry and pointer tail rounding;
        // it must agree with the real format within a few words.
        let diff = (a.total_bytes as i64 - b.bytes() as i64).unsigned_abs() as usize;
        assert!(diff <= 8, "analysis {} vs real {}", a.total_bytes, b.bytes());
    }

    #[test]
    fn block_size_tradeoff_shape() {
        // Small blocks: more blocks, less zero retention. Large blocks:
        // fewer blocks, bigger bitmaps. For a moderately sparse blocked
        // matrix, 4x4 needs more index overhead than 8x8.
        let csr = gen::generate_blocked(
            1024,
            900,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 24 },
            119,
        );
        let a4 = analyze_block_size(&csr, 4);
        let a8 = analyze_block_size(&csr, 8);
        let a16 = analyze_block_size(&csr, 16);
        assert!(a4.blocks > a8.blocks);
        assert!(a16.blocks <= a8.blocks);
        assert!(a4.mean_fill < a8.mean_fill);
        assert_eq!(a4.bitmap_bytes, 2);
        assert_eq!(a8.bitmap_bytes, 8);
        assert_eq!(a16.bitmap_bytes, 32);
        // 8x8 should not lose to 4x4 here (index overhead dominates 4x4).
        assert!(
            a8.bytes_per_nnz(csr.nnz()) <= a4.bytes_per_nnz(csr.nnz()),
            "8x8 {} vs 4x4 {}",
            a8.bytes_per_nnz(csr.nnz()),
            a4.bytes_per_nnz(csr.nnz())
        );
    }

    #[test]
    fn slice_block_rows_recombines_to_full_spmv() {
        let csr = gen::random_uniform(217, 150, 3000, 131);
        let b = BitBsr::from_csr(&csr);
        let x: Vec<f32> = (0..150).map(|i| ((i * 7 % 23) as f32) * 0.5 - 2.0).collect();
        let full = b.spmv_reference(&x).unwrap();
        for cuts in [vec![0, 28], vec![0, 2, 28], vec![0, 8, 9, 20, 28]] {
            let mut y = Vec::new();
            for w in cuts.windows(2) {
                let s = b.slice_block_rows(w[0], w[1]);
                assert!(s.validate().is_ok(), "slice {}..{}", w[0], w[1]);
                assert_eq!(s.block_rows, w[1] - w[0]);
                y.extend(s.spmv_reference(&x).unwrap());
            }
            assert_eq!(y, full, "cuts {cuts:?} must recombine bit-identically");
        }
    }

    #[test]
    fn slice_block_rows_handles_empty_and_boundary_slices() {
        let csr = gen::random_uniform(101, 77, 600, 133);
        let b = BitBsr::from_csr(&csr);
        let empty = b.slice_block_rows(13, 13);
        assert_eq!(empty.nrows, 0);
        assert_eq!(empty.bnnz(), 0);
        assert!(empty.validate().is_ok());
        // The last slice of a non-multiple-of-8 matrix keeps the partial
        // block-row's true row count.
        let tail = b.slice_block_rows(12, 13);
        assert_eq!(tail.nrows, 101 - 96);
        let all = b.slice_block_rows(0, 13);
        assert_eq!(all, b);
    }

    #[test]
    fn position_compression_rate_in_paper_range() {
        // Dense blocks: 64 nnz * 8 B of COO positions vs 8 B of bitmap = 64x.
        let dense = gen::generate_blocked(64, 20, Placement::Scattered, &FillDist::Dense, 109);
        let b = BitBsr::from_csr(&dense);
        assert!((b.position_compression_rate() - 64.0).abs() < 1e-9);
        // Singleton blocks: 1x.
        let single = gen::generate_blocked(
            512,
            60,
            Placement::Scattered,
            &FillDist::Uniform { lo: 1, hi: 1 },
            111,
        );
        let b1 = BitBsr::from_csr(&single);
        let rate = b1.position_compression_rate();
        assert!((1.0..2.5).contains(&rate), "rate {rate}");
    }
}
