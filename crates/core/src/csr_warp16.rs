//! "CSR Warp16" — the §5.3 strawman: plain CSR with 16 rows per warp
//! (matching Spaden's output granularity), each thread walking its row
//! independently.
//!
//! This is the kernel the paper uses to demonstrate why coalescing
//! dominates: "neighboring threads loading non-consecutive elements from
//! global memory, thus disrupting the coalesced memory access pattern".
//! Each warp-wide load touches up to 16 different row positions, so almost
//! every instruction shatters into one transaction per active lane; Spaden
//! beats it by 23.18× on the L40.

use crate::engine::{prepare_validated, timed, EngineError, PrepStats, SpmvEngine, SpmvRun};
use spaden_gpusim::exec::WARP_SIZE;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::Gpu;
use spaden_sparse::csr::Csr;

/// Rows processed per warp — "identical to the original Spaden".
const ROWS_PER_WARP: usize = 16;

/// CSR Warp16, prepared for one matrix (no conversion beyond the upload).
pub struct CsrWarp16Engine {
    prep: PrepStats,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    d_row_ptr: DeviceBuffer<u32>,
    d_col_idx: DeviceBuffer<u32>,
    d_values: DeviceBuffer<f32>,
}

impl CsrWarp16Engine {
    /// Validating form of [`CsrWarp16Engine::prepare`]: rejects a
    /// malformed CSR with a typed error so the engine registry can prepare
    /// any variant interchangeably from untrusted input.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        prepare_validated(gpu, csr, Self::prepare)
    }

    /// Uploads the CSR arrays; the only "preprocessing" is the copy.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let ((row_ptr, col_idx, values), seconds) =
            timed(|| (csr.row_ptr.clone(), csr.col_idx.clone(), csr.values.clone()));
        let device_bytes = (csr.bytes()) as u64;
        CsrWarp16Engine {
            prep: PrepStats { seconds, device_bytes },
            nrows: csr.nrows,
            ncols: csr.ncols,
            nnz: csr.nnz(),
            d_row_ptr: gpu.alloc(row_ptr),
            d_col_idx: gpu.alloc(col_idx),
            d_values: gpu.alloc(values),
        }
    }
}

impl SpmvEngine for CsrWarp16Engine {
    fn name(&self) -> &'static str {
        "CSR Warp16"
    }

    fn prep(&self) -> PrepStats {
        self.prep
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn run(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        let d_x = gpu.alloc(x.to_vec());
        let y = gpu.alloc_output(self.nrows);
        let nwarps = self.nrows.div_ceil(ROWS_PER_WARP);
        let nrows = self.nrows;

        let counters = gpu.launch(nwarps, |ctx| {
            let row_base = ctx.warp_id * ROWS_PER_WARP;
            let active_rows = ROWS_PER_WARP.min(nrows - row_base);

            // Each lane < 16 owns one row and walks it element by element.
            // Row bounds: a (shattered) gather over row_ptr.
            let mut lo_idx = [None; WARP_SIZE];
            let mut hi_idx = [None; WARP_SIZE];
            for l in 0..active_rows {
                lo_idx[l] = Some((row_base + l) as u32);
                hi_idx[l] = Some((row_base + l + 1) as u32);
            }
            let lo = ctx.gather(&self.d_row_ptr, &lo_idx);
            let hi = ctx.gather(&self.d_row_ptr, &hi_idx);
            ctx.ops(2);

            let mut cursor = [0u32; WARP_SIZE];
            let mut acc = [0.0f32; WARP_SIZE];
            cursor[..active_rows].copy_from_slice(&lo[..active_rows]);
            let max_len = (0..active_rows).map(|l| hi[l] - lo[l]).max().unwrap_or(0);

            for _ in 0..max_len {
                // Per-lane element loads: 16 different rows -> up to 16
                // sectors per instruction. This is the uncoalesced pattern.
                let mut idx = [None; WARP_SIZE];
                for l in 0..active_rows {
                    if cursor[l] < hi[l] {
                        idx[l] = Some(cursor[l]);
                    }
                }
                let cols = ctx.gather(&self.d_col_idx, &idx);
                let vals = ctx.gather(&self.d_values, &idx);
                // x gather: random columns.
                let mut xidx = [None; WARP_SIZE];
                for l in 0..active_rows {
                    if idx[l].is_some() {
                        xidx[l] = Some(cols[l]);
                    }
                }
                let xs = ctx.gather(&d_x, &xidx);
                ctx.ops(3); // FMA + cursor increment + predicate
                for l in 0..active_rows {
                    if idx[l].is_some() {
                        acc[l] += vals[l] * xs[l];
                        cursor[l] += 1;
                    }
                }
            }

            // Coalesced 16-row store (the one well-behaved access).
            ctx.ops(2);
            let mut writes = [None; WARP_SIZE];
            for l in 0..active_rows {
                writes[l] = Some(((row_base + l) as u32, acc[l]));
            }
            ctx.scatter(&y, &writes);
        });

        SpmvRun::new(y.to_vec(), counters, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::gen;

    #[test]
    fn matches_csr_reference_exactly() {
        // Full f32 (no f16 rounding) and per-row sequential accumulation:
        // results are bit-identical to Algorithm 1.
        let csr = gen::random_uniform(200, 150, 2500, 401);
        let x: Vec<f32> = (0..150).map(|i| (i as f32 * 0.07).sin()).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let run = CsrWarp16Engine::prepare(&gpu, &csr).run(&gpu, &x);
        assert_eq!(run.y, csr.spmv(&x).unwrap());
    }

    #[test]
    fn handles_empty_rows_and_ragged_tail() {
        let csr = gen::scale_free(130, 700, 1.3, 403);
        let x: Vec<f32> = (0..130).map(|i| i as f32 * 0.01).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let run = CsrWarp16Engine::prepare(&gpu, &csr).run(&gpu, &x);
        assert_eq!(run.y, csr.spmv(&x).unwrap());
    }

    #[test]
    fn loads_shatter_into_many_sectors() {
        // Dense-ish rows: each element-step load should approach one
        // sector per active lane, far above the coalesced 2 sectors.
        let csr = gen::random_uniform(160, 160, 8000, 405);
        let gpu = Gpu::new(GpuConfig::l40());
        let run = CsrWarp16Engine::prepare(&gpu, &csr).run(&gpu, &vec![1.0f32; 160]);
        let sectors_per_load = run.counters.sectors_read as f64 / run.counters.load_insts as f64;
        assert!(sectors_per_load > 6.0, "got {sectors_per_load:.1} sectors/load");
    }

    #[test]
    fn name_and_prep() {
        let csr = gen::random_uniform(64, 64, 500, 407);
        let gpu = Gpu::new(GpuConfig::l40());
        let e = CsrWarp16Engine::prepare(&gpu, &csr);
        assert_eq!(e.name(), "CSR Warp16");
        assert_eq!(e.prep().device_bytes, csr.bytes() as u64);
    }
}
