//! SpGEMM with bitBSR on tensor cores — rounding out the paper's §7
//! vision of "a sparse math library centered around the bitmap & blocking
//! ... incorporating support for various formats and operations" (§6 cites
//! tensor-core SpGEMM as the hardest of the sparse kernels).
//!
//! `C = A × B` with both operands sparse, computed block-Gustavson style:
//! for every A block-row `i`, each A block `(i, k)` multiplies every B
//! block `(k, j)` into a dense 8×8 accumulator tile for `(i, j)` held in
//! shared memory; tiles compress back to bitmap + packed f16 values on
//! write-out. Spaden's diagonal packing applies here too: two independent
//! 8×8 block products ride one `m16n16k16` MMA.
//!
//! A host-side **symbolic phase** (the standard SpGEMM two-phase split)
//! computes C's block structure so the numeric kernel scatters into
//! preallocated storage.

use crate::bitbsr::BitBsr;
use crate::decode::decode_matrix_block;
use crate::engine::{timed, PrepStats};
use spaden_gpusim::exec::WarpCtx;
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::{estimate_time, Gpu, KernelCounters, SimTime};
use spaden_sparse::csr::Csr;
use spaden_sparse::gen::BLOCK_DIM;
use spaden_sparse::par;

/// Result of one simulated SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmRun {
    /// The product in bitBSR form.
    pub c: BitBsr,
    /// Merged launch counters (numeric phase).
    pub counters: KernelCounters,
    /// Modelled numeric-phase time.
    pub time: SimTime,
    /// Useful FLOPs (2 × Σ products over matching blocks' nonzeros).
    pub flops: u64,
}

impl SpgemmRun {
    /// GFLOP/s of the numeric phase.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.time.seconds / 1e9
    }
}

/// bitBSR SpGEMM engine bound to a pair of conformable matrices.
pub struct SpadenSpgemmEngine {
    a: BitBsr,
    b: BitBsr,
    prep: PrepStats,
    d_a_bitmaps: DeviceBuffer<u64>,
    d_a_offsets: DeviceBuffer<u32>,
    d_a_values: DeviceBuffer<F16>,
    d_b_bitmaps: DeviceBuffer<u64>,
    d_b_offsets: DeviceBuffer<u32>,
    d_b_values: DeviceBuffer<F16>,
    d_a_cols: DeviceBuffer<u32>,
    d_b_cols: DeviceBuffer<u32>,
}

impl SpadenSpgemmEngine {
    /// Converts both operands to bitBSR and uploads them.
    pub fn prepare(gpu: &Gpu, a_csr: &Csr, b_csr: &Csr) -> Self {
        assert_eq!(a_csr.ncols, b_csr.nrows, "inner dimensions must agree");
        let ((a, b), seconds) = timed(|| {
            let a = BitBsr::from_csr(a_csr);
            let b = BitBsr::from_csr(b_csr);
            (a, b)
        });
        let prep = PrepStats { seconds, device_bytes: (a.bytes() + b.bytes()) as u64 };
        SpadenSpgemmEngine {
            d_a_bitmaps: gpu.alloc(a.bitmaps.clone()),
            d_a_offsets: gpu.alloc(a.block_offsets.clone()),
            d_a_values: gpu.alloc(a.values.clone()),
            d_b_bitmaps: gpu.alloc(b.bitmaps.clone()),
            d_b_offsets: gpu.alloc(b.block_offsets.clone()),
            d_b_values: gpu.alloc(b.values.clone()),
            d_a_cols: gpu.alloc(a.block_cols.clone()),
            d_b_cols: gpu.alloc(b.block_cols.clone()),
            a,
            b,
            prep,
        }
    }

    /// Preprocessing stats (both conversions).
    pub fn prep(&self) -> PrepStats {
        self.prep
    }

    /// Symbolic phase: C's block structure (parallel over A block-rows).
    /// Returns (block_row_ptr, block_cols) of the product's block grid.
    pub fn symbolic(&self) -> (Vec<u32>, Vec<u32>) {
        let per_row: Vec<Vec<u32>> = par::map_indexed(self.a.block_rows, |i| {
                let mut js: Vec<u32> = Vec::new();
                let lo = self.a.block_row_ptr[i] as usize;
                let hi = self.a.block_row_ptr[i + 1] as usize;
                for ak in lo..hi {
                    let k = self.a.block_cols[ak] as usize;
                    if k >= self.b.block_rows {
                        continue;
                    }
                    let blo = self.b.block_row_ptr[k] as usize;
                    let bhi = self.b.block_row_ptr[k + 1] as usize;
                    for bk in blo..bhi {
                        let j = self.b.block_cols[bk];
                        if let Err(pos) = js.binary_search(&j) {
                            js.insert(pos, j);
                        }
                    }
                }
                js
            });
        let counts: Vec<u32> = per_row.iter().map(|j| j.len() as u32).collect();
        let ptr = spaden_sparse::scan::exclusive_scan(&counts);
        let cols = per_row.into_iter().flatten().collect();
        (ptr, cols)
    }

    /// Decodes a block of either operand into a fragment portion as a
    /// dense 8×8 tile at `(base_r, base_c)`, charging the packed-value
    /// traffic.
    #[allow(clippy::too_many_arguments)]
    fn load_block_tile(
        ctx: &mut WarpCtx,
        bitmaps: &DeviceBuffer<u64>,
        offsets: &DeviceBuffer<u32>,
        values: &DeviceBuffer<F16>,
        blk: usize,
        frag: &mut Fragment,
        base_r: usize,
        base_c: usize,
    ) {
        let lanes = decode_matrix_block(ctx, bitmaps, offsets, values, blk);
        for (l, (v1, v2)) in lanes.iter().enumerate() {
            let (dr, dc) = (l / 4, 2 * (l % 4));
            frag.set(base_r + dr, base_c + dc, *v1);
            frag.set(base_r + dr, base_c + dc + 1, *v2);
        }
        ctx.ops(2);
    }

    /// Executes the numeric phase and assembles the product.
    pub fn run(&self, gpu: &Gpu) -> SpgemmRun {
        let (c_ptr, c_cols) = self.symbolic();
        let c_bnnz = c_cols.len();
        // Dense accumulator tiles, one per C block (each warp's
        // shared-memory scratch in the hardware picture). The numeric
        // phase runs as two passes over the same loop structure: a
        // parallel functional compute into `tiles`, then a counting launch
        // that charges the traffic, MMA issue and shared-memory
        // accumulation the kernel would perform.
        let mut tiles = vec![[0.0f32; 64]; c_bnnz];
        let flops = std::sync::atomic::AtomicU64::new(0);

        let a = &self.a;
        let b = &self.b;
        let c_ptr_ref = &c_ptr;
        let c_cols_ref = &c_cols;

        // Functional compute (parallel, disjoint rows).
        let tiles_out: Vec<Vec<[f32; 64]>> = par::map_indexed(a.block_rows, |i| {
                let lo = c_ptr_ref[i] as usize;
                let hi = c_ptr_ref[i + 1] as usize;
                let mut row_tiles = vec![[0.0f32; 64]; hi - lo];
                let alo = a.block_row_ptr[i] as usize;
                let ahi = a.block_row_ptr[i + 1] as usize;
                let mut local_flops = 0u64;
                for ak in alo..ahi {
                    let k = a.block_cols[ak] as usize;
                    if k >= b.block_rows {
                        continue;
                    }
                    let a_tile = a.decode_block(ak);
                    let blo = b.block_row_ptr[k] as usize;
                    let bhi = b.block_row_ptr[k + 1] as usize;
                    for bk in blo..bhi {
                        let j = b.block_cols[bk];
                        let t = c_cols_ref[lo..hi]
                            .binary_search(&j)
                            .expect("symbolic covered this block");
                        let b_tile = b.decode_block(bk);
                        let dst = &mut row_tiles[t];
                        for r in 0..BLOCK_DIM {
                            for kk in 0..BLOCK_DIM {
                                let av = a_tile[r * BLOCK_DIM + kk];
                                if av == 0.0 {
                                    continue;
                                }
                                for c in 0..BLOCK_DIM {
                                    dst[r * BLOCK_DIM + c] += av * b_tile[kk * BLOCK_DIM + c];
                                }
                            }
                        }
                        local_flops += 2
                            * a.block_nnz(ak) as u64
                            * 8; // each A nonzero meets one B row of <=8 values
                    }
                }
                flops.fetch_add(local_flops, std::sync::atomic::Ordering::Relaxed);
                row_tiles
            });
        for (i, row) in tiles_out.into_iter().enumerate() {
            let lo = c_ptr[i] as usize;
            for (t, tile) in row.into_iter().enumerate() {
                tiles[lo + t] = tile;
            }
        }

        // Counting launch: same loop structure, charging decode traffic,
        // MMA issue (two block products per MMA) and shared-memory tile
        // accumulation, plus the compressed write-out.
        let counters = gpu.launch(a.block_rows, |ctx| {
            let i = ctx.warp_id;
            ctx.ops(2); // block-row bounds reads
            let lo = a.block_row_ptr[i] as usize;
            let hi = a.block_row_ptr[i + 1] as usize;
            let mut products = 0u64;
            for ak in lo..hi {
                ctx.read(&self.d_a_cols, ak);
                let k = a.block_cols[ak] as usize;
                if k >= b.block_rows {
                    continue;
                }
                // A block decoded once per (i, k), held in registers.
                let mut a_frag = Fragment::new(FragKind::MatrixA);
                Self::load_block_tile(
                    ctx,
                    &self.d_a_bitmaps,
                    &self.d_a_offsets,
                    &self.d_a_values,
                    ak,
                    &mut a_frag,
                    0,
                    0,
                );
                let blo = b.block_row_ptr[k] as usize;
                let bhi = b.block_row_ptr[k + 1] as usize;
                for bk in blo..bhi {
                    ctx.read(&self.d_b_cols, bk);
                    let mut b_frag = Fragment::new(FragKind::MatrixB);
                    Self::load_block_tile(
                        ctx,
                        &self.d_b_bitmaps,
                        &self.d_b_offsets,
                        &self.d_b_values,
                        bk,
                        &mut b_frag,
                        0,
                        0,
                    );
                    products += 1;
                    // Two block products per MMA: issue one every other
                    // product (the diagonal-packing trick).
                    if products.is_multiple_of(2) {
                        ctx.counters.mma_m16n16k16 += 1;
                    }
                    // Accumulate the 8×8 tile in shared memory: 256 B
                    // read-modify-write.
                    ctx.smem_stage(512);
                    ctx.ops(4);
                }
            }
            if !products.is_multiple_of(2) {
                ctx.counters.mma_m16n16k16 += 1;
            }
            // Write-out: compress each C tile of the row — bitmap (8 B) +
            // packed f16 values; modelled as the store traffic of the
            // final structure slice.
            let clo = c_ptr[i] as usize;
            let chi = c_ptr[i + 1] as usize;
            for t in clo..chi {
                let nnz_tile = tiles[t].iter().filter(|v| **v != 0.0).count() as u64;
                ctx.ops(6); // ballot + popcount prefix
                ctx.counters.store_insts += 1;
                let bytes = 8 + 4 + 2 * nnz_tile;
                let sectors = bytes.div_ceil(32).max(1);
                ctx.counters.sectors_written += sectors;
                ctx.counters.dram_write_bytes += sectors * 32;
            }
        });

        // Assemble the product bitBSR from the computed tiles.
        let mut bitmaps = Vec::with_capacity(c_bnnz);
        let mut values: Vec<F16> = Vec::new();
        for tile in &tiles {
            let mut bmp = 0u64;
            for (bit, &v) in tile.iter().enumerate() {
                let v16 = F16::from_f32(v);
                if !v16.is_zero() {
                    bmp |= 1u64 << bit;
                    values.push(v16);
                }
            }
            bitmaps.push(bmp);
        }
        // Drop blocks that became all-zero after f16 rounding/cancellation.
        let mut ptr2 = vec![0u32];
        let mut cols2 = Vec::new();
        let mut bitmaps2 = Vec::new();
        let mut counts = Vec::new();
        for i in 0..a.block_rows {
            for t in c_ptr[i] as usize..c_ptr[i + 1] as usize {
                if bitmaps[t] != 0 {
                    cols2.push(c_cols[t]);
                    bitmaps2.push(bitmaps[t]);
                    counts.push(bitmaps[t].count_ones());
                }
            }
            ptr2.push(cols2.len() as u32);
        }
        let offsets = spaden_sparse::scan::exclusive_scan(&counts);
        let c = BitBsr {
            nrows: self.a.nrows,
            ncols: self.b.ncols,
            block_rows: self.a.block_rows,
            block_cols_dim: self.b.block_cols_dim,
            block_row_ptr: ptr2,
            block_cols: cols2,
            bitmaps: bitmaps2,
            block_offsets: offsets,
            values,
        };
        let time = estimate_time(&counters, &gpu.config);
        SpgemmRun {
            c,
            counters,
            time,
            flops: flops.into_inner(),
        }
    }
}

/// CPU reference SpGEMM (Gustavson, f64 accumulation) for verification.
pub fn spgemm_reference(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols, b.nrows);
    let mut coo = spaden_sparse::coo::Coo::new(a.nrows, b.ncols);
    let mut acc: Vec<f64> = vec![0.0; b.ncols];
    let mut touched: Vec<u32> = Vec::new();
    for i in 0..a.nrows {
        let (acols, avals) = a.row(i);
        for (k, av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(*k as usize);
            for (j, bv) in bcols.iter().zip(bvals) {
                if acc[*j as usize] == 0.0 && !touched.contains(j) {
                    touched.push(*j);
                }
                acc[*j as usize] += *av as f64 * *bv as f64;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if acc[j as usize] != 0.0 {
                coo.push(i as u32, j, acc[j as usize] as f32);
            }
            acc[j as usize] = 0.0;
        }
        touched.clear();
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn f16_csr(csr: &Csr) -> Csr {
        let mut c = csr.clone();
        for v in &mut c.values {
            *v = F16::round_f32(*v);
        }
        c
    }

    fn check_spgemm(a: &Csr, b: &Csr) {
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpgemmEngine::prepare(&gpu, a, b);
        let run = eng.run(&gpu);
        // Reference on the f16-rounded inputs (what the engine actually
        // multiplies).
        let want = spgemm_reference(&f16_csr(a), &f16_csr(b));
        let got = run.c.to_csr();
        assert_eq!(got.nrows, want.nrows);
        assert_eq!(got.ncols, want.ncols);
        let (gd, wd) = (got.to_dense(), want.to_dense());
        for (i, (g, w)) in gd.iter().zip(&wd).enumerate() {
            // f16 rounding of products + possible cancellation.
            let tol = 0.05f32.max(w.abs() * 0.02);
            assert!((g - w).abs() <= tol, "dense pos {i}: {g} vs {w}");
        }
    }

    #[test]
    fn identity_times_a_is_a() {
        let a = gen::generate_blocked(
            64,
            24,
            Placement::Scattered,
            &FillDist::Uniform { lo: 4, hi: 40 },
            161,
        );
        let mut eye = spaden_sparse::coo::Coo::new(64, 64);
        for i in 0..64u32 {
            eye.push(i, i, 1.0);
        }
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpgemmEngine::prepare(&gpu, &eye.to_csr(), &a);
        let run = eng.run(&gpu);
        assert_eq!(run.c.to_csr(), f16_csr(&a));
    }

    #[test]
    fn matches_reference_small_random() {
        let a = gen::random_uniform(48, 56, 300, 163);
        let b = gen::random_uniform(56, 40, 280, 165);
        check_spgemm(&a, &b);
    }

    #[test]
    fn matches_reference_blocked() {
        let a = gen::generate_blocked(
            96,
            40,
            Placement::Banded { bandwidth: 3 },
            &FillDist::Uniform { lo: 2, hi: 30 },
            167,
        );
        let b = gen::generate_blocked(
            96,
            36,
            Placement::Banded { bandwidth: 2 },
            &FillDist::Uniform { lo: 2, hi: 30 },
            169,
        );
        check_spgemm(&a, &b);
    }

    #[test]
    fn symbolic_structure_is_superset_of_numeric() {
        let a = gen::random_uniform(80, 80, 500, 171);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpgemmEngine::prepare(&gpu, &a, &a);
        let (ptr, cols) = eng.symbolic();
        let run = eng.run(&gpu);
        // Every numeric block appears in the symbolic structure.
        assert!(run.c.bnnz() <= cols.len());
        assert_eq!(ptr.len(), eng.a.block_rows + 1);
        assert!(run.c.validate().is_ok());
    }

    #[test]
    fn two_products_per_mma() {
        let a = gen::generate_blocked(
            128,
            48,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            173,
        );
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpgemmEngine::prepare(&gpu, &a, &a);
        let run = eng.run(&gpu);
        // MMAs = ceil(products / 2) summed per row; products >= bnnz of C.
        assert!(run.counters.mma_m16n16k16 > 0);
        assert!(run.flops > 0);
        assert!(run.gflops() > 0.0);
    }

    #[test]
    fn rectangular_chain() {
        // (m x k) * (k x n) with awkward dimensions.
        let a = gen::random_uniform(33, 50, 200, 175);
        let b = gen::random_uniform(50, 27, 180, 177);
        check_spgemm(&a, &b);
    }

    #[test]
    fn reference_gustavson_identity() {
        let a = gen::random_uniform(30, 30, 150, 179);
        let mut eye = spaden_sparse::coo::Coo::new(30, 30);
        for i in 0..30u32 {
            eye.push(i, i, 1.0);
        }
        assert_eq!(spgemm_reference(&a, &eye.to_csr()), a);
    }
}
