//! SpMM with bitBSR on tensor cores — the first of the paper's stated
//! future-work extensions ("we aim to explore the adaptation of bitBSR for
//! other sparse operations on dense matrix units, including SpMM and
//! SDDMM").
//!
//! `C[m×n] = A_sparse × B_dense`. The kernel keeps Spaden's diagonal
//! two-block packing, but the B fragment now carries a real 8×8 tile of
//! the dense operand instead of a broadcast vector, so all 128 diagonal
//! accumulator elements are useful outputs: where SpMV extracts 16 values
//! per MMA, SpMM extracts 128 — the utilisation jump that makes SpMM the
//! friendlier tensor-core workload (§6: "The presence of dense matrix in
//! SpMM ... simplifies the adaptation of tensor cores").

use crate::bitbsr::BitBsr;
use crate::decode::decode_matrix_block;
use crate::engine::{timed, PrepStats};
use spaden_gpusim::exec::{WarpCtx, WARP_SIZE};
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::{estimate_time, Gpu, KernelCounters, SimTime};
use spaden_sparse::csr::Csr;
use spaden_sparse::dense::Dense;
use spaden_sparse::gen::BLOCK_DIM;

/// Result of one simulated SpMM.
#[derive(Debug, Clone)]
pub struct SpmmRun {
    /// The dense product `C = A × B`.
    pub c: Dense,
    /// Merged launch counters.
    pub counters: KernelCounters,
    /// Modelled execution time.
    pub time: SimTime,
}

impl SpmmRun {
    /// GFLOP/s at `2 · nnz(A) · ncols(B)` useful FLOPs.
    pub fn gflops(&self, nnz: usize, n: usize) -> f64 {
        2.0 * nnz as f64 * n as f64 / self.time.seconds / 1e9
    }
}

/// Spaden-style SpMM engine: bitBSR matrix, dense multiplicand.
pub struct SpadenSpmmEngine {
    format: BitBsr,
    prep: PrepStats,
    d_block_row_ptr: DeviceBuffer<u32>,
    d_block_cols: DeviceBuffer<u32>,
    d_bitmaps: DeviceBuffer<u64>,
    d_block_offsets: DeviceBuffer<u32>,
    d_values: DeviceBuffer<F16>,
}

impl SpadenSpmmEngine {
    /// Converts and uploads (same bitBSR as SpMV — one format, many ops).
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let (format, seconds) = timed(|| BitBsr::from_csr(csr));
        let prep = PrepStats { seconds, device_bytes: format.bytes() as u64 };
        SpadenSpmmEngine {
            d_block_row_ptr: gpu.alloc(format.block_row_ptr.clone()),
            d_block_cols: gpu.alloc(format.block_cols.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            prep,
        }
    }

    /// Preprocessing stats.
    pub fn prep(&self) -> PrepStats {
        self.prep
    }

    /// The converted format.
    pub fn format(&self) -> &BitBsr {
        &self.format
    }

    /// Fills one B-fragment portion with the 8×8 dense tile of `b` for
    /// block-column `bc` and output-column tile `tile` (columns
    /// `tile*8 .. tile*8+8`). Two strided gathers (even / odd tile rows).
    fn fill_b_tile(
        &self,
        ctx: &mut WarpCtx,
        d_b: &DeviceBuffer<f32>,
        (b_rows, b_cols): (usize, usize),
        (bc, tile): (usize, usize),
        b_frag: &mut Fragment,
        reg_base: usize,
    ) {
        ctx.ops(3); // address arithmetic
        let mut idx0 = [None; WARP_SIZE];
        let mut idx1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            let rr = 2 * (l % 4); // tile row pair
            let cc = l / 4; // tile column
            let col = tile * BLOCK_DIM + cc;
            let row0 = bc * BLOCK_DIM + rr;
            if col < b_cols {
                if row0 < b_rows {
                    idx0[l] = Some((row0 * b_cols + col) as u32);
                }
                if row0 + 1 < b_rows {
                    idx1[l] = Some(((row0 + 1) * b_cols + col) as u32);
                }
            }
        }
        let v0 = ctx.gather(d_b, &idx0);
        let v1 = ctx.gather(d_b, &idx1);
        for l in 0..WARP_SIZE {
            b_frag.write_reg(l, reg_base, if idx0[l].is_some() { v0[l] } else { 0.0 });
            b_frag.write_reg(l, reg_base + 1, if idx1[l].is_some() { v1[l] } else { 0.0 });
        }
        ctx.ops(2);
    }

    /// Executes `C = A × B` on the simulated GPU.
    pub fn run(&self, gpu: &Gpu, b: &Dense) -> SpmmRun {
        assert_eq!(b.rows, self.format.ncols, "B row count must match A columns");
        let n = b.cols;
        let d_b = gpu.alloc(b.data.clone());
        let out = gpu.alloc_output(self.format.nrows * n);
        let block_rows = self.format.block_rows;
        let n_pairs = block_rows.div_ceil(2);
        let col_tiles = n.div_ceil(BLOCK_DIM);
        let nrows = self.format.nrows;

        // Warp grid: block-row pairs × output column tiles.
        let counters = gpu.launch(n_pairs * col_tiles, |ctx| {
            let pair = ctx.warp_id / col_tiles;
            let tile = ctx.warp_id % col_tiles;
            let br0 = 2 * pair;
            let br1 = br0 + 1;
            let lo0 = ctx.read(&self.d_block_row_ptr, br0) as usize;
            let hi0 = ctx.read(&self.d_block_row_ptr, br0 + 1) as usize;
            let hi1 = if br1 < block_rows {
                ctx.read(&self.d_block_row_ptr, br1 + 1) as usize
            } else {
                hi0
            };
            let (len0, len1) = (hi0 - lo0, hi1 - hi0);

            let mut a_frag = Fragment::new(FragKind::MatrixA);
            let mut b_frag = Fragment::new(FragKind::MatrixB);
            let mut acc = Fragment::new(FragKind::Accumulator);
            ctx.ops(3);

            for i in 0..len0.max(len1) {
                ctx.ops(2);
                for (cond, k, reg_base) in
                    [(i < len0, lo0 + i, 0usize), (i < len1, hi0 + i, 6usize)]
                {
                    if cond {
                        let bc = ctx.read(&self.d_block_cols, k) as usize;
                        let a = decode_matrix_block(
                            ctx,
                            &self.d_bitmaps,
                            &self.d_block_offsets,
                            &self.d_values,
                            k,
                        );
                        for l in 0..WARP_SIZE {
                            a_frag.write_reg(l, reg_base, a[l].0);
                            a_frag.write_reg(l, reg_base + 1, a[l].1);
                        }
                        ctx.ops(2);
                        self.fill_b_tile(ctx, &d_b, (b.rows, n), (bc, tile), &mut b_frag, reg_base);
                    } else {
                        for l in 0..WARP_SIZE {
                            a_frag.write_reg(l, reg_base, 0.0);
                            a_frag.write_reg(l, reg_base + 1, 0.0);
                        }
                        ctx.ops(1);
                    }
                }
                let c = acc.clone();
                ctx.mma_16x16x16(&mut acc, &a_frag, &b_frag, &c);
            }

            // Extract both diagonal portions: 4 coalesced-ish scatters of
            // 32 elements each (TL reg 0/1 for br0, BR reg 6/7 for br1).
            ctx.ops(4);
            for (br, regs) in [(br0, [0usize, 1]), (br1, [6usize, 7])] {
                if br >= block_rows {
                    continue;
                }
                for reg in regs {
                    let mut writes = [None; WARP_SIZE];
                    for l in 0..WARP_SIZE {
                        let rr = l / 4;
                        let cc = 2 * (l % 4) + (reg % 2);
                        let row = br * BLOCK_DIM + rr;
                        let col = tile * BLOCK_DIM + cc;
                        if row < nrows && col < n {
                            writes[l] =
                                Some(((row * n + col) as u32, acc.read_reg(l, reg)));
                        }
                    }
                    ctx.scatter(&out, &writes);
                }
            }
        });

        let c = Dense { rows: self.format.nrows, cols: n, data: out.to_vec() };
        let time = estimate_time(&counters, &gpu.config);
        SpmmRun { c, counters, time }
    }
}

/// CUDA-core CSR SpMM baseline (row-per-warp, lane-per-output-column) for
/// the extension bench.
pub struct CsrSpmmEngine {
    prep: PrepStats,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    d_row_ptr: DeviceBuffer<u32>,
    d_col_idx: DeviceBuffer<u32>,
    d_values: DeviceBuffer<f32>,
}

impl CsrSpmmEngine {
    /// Uploads the CSR arrays.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let ((rp, ci, v), seconds) =
            timed(|| (csr.row_ptr.clone(), csr.col_idx.clone(), csr.values.clone()));
        CsrSpmmEngine {
            prep: PrepStats { seconds, device_bytes: csr.bytes() as u64 },
            nrows: csr.nrows,
            ncols: csr.ncols,
            nnz: csr.nnz(),
            d_row_ptr: gpu.alloc(rp),
            d_col_idx: gpu.alloc(ci),
            d_values: gpu.alloc(v),
        }
    }

    /// Preprocessing stats.
    pub fn prep(&self) -> PrepStats {
        self.prep
    }

    /// Matrix nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Executes `C = A × B`: one warp per row, lanes over output columns.
    pub fn run(&self, gpu: &Gpu, b: &Dense) -> SpmmRun {
        assert_eq!(b.rows, self.ncols, "B row count must match A columns");
        let n = b.cols;
        let d_b = gpu.alloc(b.data.clone());
        let out = gpu.alloc_output(self.nrows * n);
        let nrows = self.nrows;

        let counters = gpu.launch(nrows, |ctx| {
            let r = ctx.warp_id;
            let lo = ctx.read(&self.d_row_ptr, r) as usize;
            let hi = ctx.read(&self.d_row_ptr, r + 1) as usize;
            ctx.ops(2);
            let mut acc = [0.0f32; WARP_SIZE];
            for e in lo..hi {
                let col = ctx.read(&self.d_col_idx, e) as usize;
                let val = ctx.read(&self.d_values, e);
                // Lanes cover output columns: coalesced row read of B.
                let mut idx = [None; WARP_SIZE];
                for l in 0..n.min(WARP_SIZE) {
                    idx[l] = Some((col * n + l) as u32);
                }
                let brow = ctx.gather(&d_b, &idx);
                ctx.ops(2);
                for l in 0..n.min(WARP_SIZE) {
                    acc[l] += val * brow[l];
                }
            }
            ctx.ops(1);
            let mut writes = [None; WARP_SIZE];
            for l in 0..n.min(WARP_SIZE) {
                writes[l] = Some(((r * n + l) as u32, acc[l]));
            }
            ctx.scatter(&out, &writes);
        });

        let c = Dense { rows: self.nrows, cols: n, data: out.to_vec() };
        let time = estimate_time(&counters, &gpu.config);
        SpmmRun { c, counters, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::dense::spmm_reference;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn check_spmm(csr: &Csr, n: usize) {
        let b = Dense::from_fn(csr.ncols, n, |r, c| ((r * 3 + c * 7) % 9) as f32 * 0.25 - 1.0);
        let gpu = Gpu::new(GpuConfig::l40());
        let run = SpadenSpmmEngine::prepare(&gpu, csr).run(&gpu, &b);
        let want = spmm_reference(csr, &b).unwrap();
        assert_eq!(run.c.rows, want.rows);
        assert_eq!(run.c.cols, want.cols);
        for r in 0..want.rows {
            for c in 0..want.cols {
                let (a, w) = (run.c.get(r, c), want.get(r, c));
                let tol = csr.row_nnz(r) as f32 * 4.0 * 2.0f32.powi(-10) + 1e-3;
                assert!((a - w).abs() <= tol, "({r},{c}): {a} vs {w}");
            }
        }
    }

    #[test]
    fn matches_reference_blocked_n8() {
        let csr = gen::generate_blocked(
            128,
            90,
            Placement::Banded { bandwidth: 4 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            71,
        );
        check_spmm(&csr, 8);
    }

    #[test]
    fn matches_reference_random_n16() {
        check_spmm(&gen::random_uniform(100, 90, 1200, 73), 16);
    }

    #[test]
    fn matches_reference_ragged_n5() {
        // n not a multiple of the 8-wide tile.
        check_spmm(&gen::random_uniform(70, 110, 900, 75), 5);
    }

    #[test]
    fn matches_reference_n1_degenerates_to_spmv() {
        check_spmm(&gen::random_uniform(60, 60, 500, 77), 1);
    }

    #[test]
    fn csr_spmm_baseline_matches_reference_exactly() {
        let csr = gen::random_uniform(90, 80, 1000, 79);
        let b = Dense::from_fn(80, 12, |r, c| ((r + c) % 5) as f32);
        let gpu = Gpu::new(GpuConfig::l40());
        let run = CsrSpmmEngine::prepare(&gpu, &csr).run(&gpu, &b);
        let want = spmm_reference(&csr, &b).unwrap();
        for i in 0..want.data.len() {
            assert!((run.c.data[i] - want.data[i]).abs() <= 1e-4 * want.data[i].abs().max(1.0));
        }
    }

    #[test]
    fn spmm_amortises_decode_over_columns() {
        // Same matrix traffic serves 8 output columns: GFLOPS at n=8 must
        // clearly beat 8 independent SpMVs' effective rate.
        let csr = gen::generate_blocked(
            512,
            400,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            81,
        );
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpmmEngine::prepare(&gpu, &csr);
        let b8 = Dense::from_fn(512, 8, |r, c| ((r + c) % 3) as f32);
        let run8 = eng.run(&gpu, &b8);
        let spmv = crate::SpadenEngine::prepare(&gpu, &csr);
        let x = b8.column(0);
        let run1 = crate::SpmvEngine::run(&spmv, &gpu, &x);
        let spmm_flops_rate = run8.gflops(csr.nnz(), 8);
        let spmv_rate = run1.gflops(csr.nnz());
        assert!(
            spmm_flops_rate > 2.0 * spmv_rate,
            "spmm {spmm_flops_rate:.1} vs spmv {spmv_rate:.1} GFLOPS"
        );
    }

    #[test]
    fn utilisation_128_of_256_per_mma() {
        // MMA count equals the SpMV kernel's per column-tile: for n=8 one
        // tile, so identical MMAs but 8x the useful outputs.
        let csr = gen::generate_blocked(
            128,
            100,
            Placement::Scattered,
            &FillDist::Uniform { lo: 4, hi: 20 },
            83,
        );
        let gpu = Gpu::new(GpuConfig::l40());
        let b = Dense::zeros(128, 8);
        let spmm = SpadenSpmmEngine::prepare(&gpu, &csr).run(&gpu, &b);
        let spmv = crate::SpmvEngine::run(
            &crate::SpadenEngine::prepare(&gpu, &csr),
            &gpu,
            &vec![0.0f32; 128],
        );
        assert_eq!(spmm.counters.mma_m16n16k16, spmv.counters.mma_m16n16k16);
    }
}
