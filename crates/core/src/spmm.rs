//! SpMM with bitBSR on tensor cores — the first of the paper's stated
//! future-work extensions ("we aim to explore the adaptation of bitBSR for
//! other sparse operations on dense matrix units, including SpMM and
//! SDDMM").
//!
//! `C[m×n] = A_sparse × B_dense`. The kernel keeps Spaden's diagonal
//! two-block packing, but the B fragment now carries a real 8×8 tile of
//! the dense operand instead of a broadcast vector, so all 128 diagonal
//! accumulator elements are useful outputs: where SpMV extracts 16 values
//! per MMA, SpMM extracts 128 — the utilisation jump that makes SpMM the
//! friendlier tensor-core workload (§6: "The presence of dense matrix in
//! SpMM ... simplifies the adaptation of tensor cores").

use crate::abft::AbftChecksums;
use crate::bitbsr::BitBsr;
use crate::decode::{decode_matrix_block, lane_vector_positions};
use crate::engine::{prepare_validated, timed, EngineError, PrepStats};
use crate::kernel_cuda::CUDA_BLOCK_PRODUCT_CYCLES;
use crate::kernel_tc::ABFT_MAX_RETRIES;
use spaden_gpusim::exec::{WarpCtx, WARP_SIZE};
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::{estimate_time, Gpu, KernelCounters, SimTime};
use spaden_sparse::csr::Csr;
use spaden_sparse::dense::Dense;
use spaden_sparse::gen::BLOCK_DIM;

/// Result of one simulated SpMM.
#[derive(Debug, Clone)]
pub struct SpmmRun {
    /// The dense product `C = A × B`.
    pub c: Dense,
    /// Merged launch counters.
    pub counters: KernelCounters,
    /// Modelled execution time.
    pub time: SimTime,
}

impl SpmmRun {
    /// GFLOP/s at `2 · nnz(A) · ncols(B)` useful FLOPs.
    pub fn gflops(&self, nnz: usize, n: usize) -> f64 {
        2.0 * nnz as f64 * n as f64 / self.time.seconds / 1e9
    }
}

/// Spaden-style SpMM engine: bitBSR matrix, dense multiplicand.
pub struct SpadenSpmmEngine {
    format: BitBsr,
    abft: AbftChecksums,
    prep: PrepStats,
    d_block_row_ptr: DeviceBuffer<u32>,
    d_block_cols: DeviceBuffer<u32>,
    d_bitmaps: DeviceBuffer<u64>,
    d_block_offsets: DeviceBuffer<u32>,
    d_values: DeviceBuffer<F16>,
}

impl SpadenSpmmEngine {
    /// Converts and uploads (same bitBSR as SpMV — one format, many ops),
    /// and precomputes the block-row ABFT checksums that verify each
    /// output column of a batched sweep.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let ((format, abft), seconds) = timed(|| {
            let format = BitBsr::from_csr(csr);
            let abft = AbftChecksums::build(&format);
            (format, abft)
        });
        let prep = PrepStats { seconds, device_bytes: format.bytes() as u64 };
        SpadenSpmmEngine {
            d_block_row_ptr: gpu.alloc(format.block_row_ptr.clone()),
            d_block_cols: gpu.alloc(format.block_cols.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            abft,
            prep,
        }
    }

    /// Validates the matrix, then [`SpadenSpmmEngine::prepare`]s — same
    /// fallible lifecycle as every SpMV engine.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        prepare_validated(gpu, csr, Self::prepare)
    }

    /// Preprocessing stats.
    pub fn prep(&self) -> PrepStats {
        self.prep
    }

    /// The converted format.
    pub fn format(&self) -> &BitBsr {
        &self.format
    }

    /// The precomputed per-block-row ABFT checksums (shared across output
    /// columns — column `j` of `C` is `A · B[:, j]`).
    pub fn abft(&self) -> &AbftChecksums {
        &self.abft
    }

    /// Matrix rows (rows of `C`).
    pub fn nrows(&self) -> usize {
        self.format.nrows
    }

    /// Matrix columns (required rows of `B`).
    pub fn ncols(&self) -> usize {
        self.format.ncols
    }

    /// Strict shape validation of the dense operand: `B` must be
    /// non-empty, have exactly `A`'s column count as its row count, and
    /// carry a consistent backing buffer.
    fn validate_b(&self, b: &Dense) -> Result<(), EngineError> {
        if b.rows != self.format.ncols {
            return Err(EngineError::ShapeMismatch { expected: self.format.ncols, got: b.rows });
        }
        if b.cols == 0 {
            return Err(EngineError::Validation("B must have at least one column".into()));
        }
        if b.data.len() != b.rows * b.cols {
            return Err(EngineError::Validation(format!(
                "B backing buffer has {} values for a {}x{} shape",
                b.data.len(),
                b.rows,
                b.cols
            )));
        }
        Ok(())
    }

    /// Fills one B-fragment portion with the 8×8 dense tile of `b` for
    /// block-column `bc` and output-column tile `tile` (columns
    /// `tile*8 .. tile*8+8`). Two strided gathers (even / odd tile rows).
    fn fill_b_tile(
        &self,
        ctx: &mut WarpCtx,
        d_b: &DeviceBuffer<f32>,
        (b_rows, b_cols): (usize, usize),
        (bc, tile): (usize, usize),
        b_frag: &mut Fragment,
        reg_base: usize,
    ) {
        ctx.ops(3); // address arithmetic
        let mut idx0 = [None; WARP_SIZE];
        let mut idx1 = [None; WARP_SIZE];
        for l in 0..WARP_SIZE {
            let rr = 2 * (l % 4); // tile row pair
            let cc = l / 4; // tile column
            let col = tile * BLOCK_DIM + cc;
            let row0 = bc * BLOCK_DIM + rr;
            if col < b_cols {
                if row0 < b_rows {
                    idx0[l] = Some((row0 * b_cols + col) as u32);
                }
                if row0 + 1 < b_rows {
                    idx1[l] = Some(((row0 + 1) * b_cols + col) as u32);
                }
            }
        }
        let v0 = ctx.gather(d_b, &idx0);
        let v1 = ctx.gather(d_b, &idx1);
        for l in 0..WARP_SIZE {
            b_frag.write_reg(l, reg_base, if idx0[l].is_some() { v0[l] } else { 0.0 });
            b_frag.write_reg(l, reg_base + 1, if idx1[l].is_some() { v1[l] } else { 0.0 });
        }
        ctx.ops(2);
    }

    /// Executes `C = A × B` on the simulated GPU. Panics on malformed
    /// operands — serving paths use [`SpadenSpmmEngine::try_run`].
    pub fn run(&self, gpu: &Gpu, b: &Dense) -> SpmmRun {
        self.try_run(gpu, b).expect("SpMM operands must be well-formed")
    }

    /// Fallible launch: validates the dense operand ([`EngineError`]
    /// instead of a panic), then executes `C = A × B`.
    pub fn try_run(&self, gpu: &Gpu, b: &Dense) -> Result<SpmmRun, EngineError> {
        self.validate_b(b)?;
        Ok(self.run_kernel(gpu, b))
    }

    /// ABFT-checked SpMM with the same recompute-ladder discipline as the
    /// SpMV rung: (1) the tensor-core sweep runs; (2) every output
    /// *column* is verified block-row-wise against the checksums (column
    /// `j` of `C` is `A · B[:, j]`, so the SpMV sums apply unchanged);
    /// (3) failing `(column, block-row)` cells — a fault localised to 8
    /// output rows of one request's response — are recomputed on the
    /// scalar CUDA-core path (itself subject to injection); (4) after
    /// [`ABFT_MAX_RETRIES`] rounds that still fail,
    /// [`EngineError::CorrectionExhausted`] is returned instead of
    /// silently wrong columns. Recovery launches merge into the returned
    /// counters, so the modelled time includes the cost of recovery.
    pub fn try_run_checked(&self, gpu: &Gpu, b: &Dense) -> Result<SpmmRun, EngineError> {
        let mut run = self.try_run(gpu, b)?;
        let mut bad = self.abft.verify_spmm(b, &run.c);
        let mut retries = 0;
        while !bad.is_empty() {
            let cells: Vec<(u32, u32)> = bad
                .iter()
                .flat_map(|(j, brs)| brs.iter().map(|&br| (br as u32, *j as u32)))
                .collect();
            run.counters.faults_observed += cells.len() as u64;
            if retries == ABFT_MAX_RETRIES {
                return Err(EngineError::CorrectionExhausted {
                    block_rows: cells.len(),
                    retries,
                });
            }
            retries += 1;
            let c = self.recompute_cells(gpu, b, &cells, &mut run.c);
            run.counters.merge(&c);
            bad = bad
                .into_iter()
                .filter_map(|(j, brs)| {
                    let still: Vec<usize> = brs
                        .into_iter()
                        .filter(|&br| !self.abft.check_block_row_column(br, b, &run.c, j))
                        .collect();
                    (!still.is_empty()).then_some((j, still))
                })
                .collect();
        }
        run.time = estimate_time(&run.counters, &gpu.config);
        Ok(run)
    }

    /// Recomputes the given `(block-row, column)` cells on CUDA cores (the
    /// `Spaden w/o TC` compute step, one warp per cell) and splices the
    /// refreshed 8-row column segments into `c`. Returns the launch's
    /// counters.
    fn recompute_cells(
        &self,
        gpu: &Gpu,
        b: &Dense,
        cells: &[(u32, u32)],
        c: &mut Dense,
    ) -> KernelCounters {
        let flat: Vec<u32> = cells.iter().flat_map(|&(br, j)| [br, j]).collect();
        let d_cells = gpu.alloc(flat);
        let d_b = gpu.alloc(b.data.clone());
        let out = gpu.alloc_output(cells.len() * BLOCK_DIM);
        let nrows = self.format.nrows;
        let (b_rows, b_cols) = (b.rows, b.cols);

        let counters = gpu.launch(cells.len(), |ctx| {
            let br = ctx.read(&d_cells, 2 * ctx.warp_id) as usize;
            let j = ctx.read(&d_cells, 2 * ctx.warp_id + 1) as usize;
            let lo = ctx.read(&self.d_block_row_ptr, br) as usize;
            let hi = ctx.read(&self.d_block_row_ptr, br + 1) as usize;
            let mut row_acc = [0.0f32; BLOCK_DIM];
            ctx.ops(2);
            for k in lo..hi {
                ctx.ops(2);
                let bc = ctx.read(&self.d_block_cols, k) as usize;
                let a = decode_matrix_block(
                    ctx,
                    &self.d_bitmaps,
                    &self.d_block_offsets,
                    &self.d_values,
                    k,
                );
                // Column j of B for this block-column, in the same
                // per-lane pair layout as the vector segment decode, so
                // the lanes line up with the decoded block values.
                ctx.ops(3);
                let mut idx1 = [None; WARP_SIZE];
                let mut idx2 = [None; WARP_SIZE];
                for lid in 0..WARP_SIZE {
                    let (p1, p2) = lane_vector_positions(lid);
                    let r1 = bc * BLOCK_DIM + p1;
                    let r2 = bc * BLOCK_DIM + p2;
                    if r1 < b_rows {
                        idx1[lid] = Some((r1 * b_cols + j) as u32);
                    }
                    if r2 < b_rows {
                        idx2[lid] = Some((r2 * b_cols + j) as u32);
                    }
                }
                let v1 = ctx.gather(&d_b, &idx1);
                let v2 = ctx.gather(&d_b, &idx2);
                ctx.ops(CUDA_BLOCK_PRODUCT_CYCLES);
                let mut partial = [0.0f32; WARP_SIZE];
                for lid in 0..WARP_SIZE {
                    let b1 = if idx1[lid].is_some() { v1[lid] } else { 0.0 };
                    let b2 = if idx2[lid].is_some() { v2[lid] } else { 0.0 };
                    partial[lid] = F16::round_f32(a[lid].0) * F16::round_f32(b1)
                        + F16::round_f32(a[lid].1) * F16::round_f32(b2);
                }
                let sums = ctx.segmented_reduce_sum(&partial, 4);
                ctx.ops(1);
                for dr in 0..BLOCK_DIM {
                    row_acc[dr] += sums[4 * dr];
                }
            }
            ctx.ops(2);
            let mut writes = [None; WARP_SIZE];
            for dr in 0..BLOCK_DIM {
                if br * BLOCK_DIM + dr < nrows {
                    writes[dr] = Some(((ctx.warp_id * BLOCK_DIM + dr) as u32, row_acc[dr]));
                }
            }
            ctx.scatter(&out, &writes);
        });

        let fresh = out.to_vec();
        for (i, &(br, j)) in cells.iter().enumerate() {
            for dr in 0..BLOCK_DIM {
                let r = br as usize * BLOCK_DIM + dr;
                if r < nrows {
                    c.set(r, j as usize, fresh[i * BLOCK_DIM + dr]);
                }
            }
        }
        counters
    }

    /// The tensor-core sweep itself (operands already validated).
    fn run_kernel(&self, gpu: &Gpu, b: &Dense) -> SpmmRun {
        let n = b.cols;
        let d_b = gpu.alloc(b.data.clone());
        let out = gpu.alloc_output(self.format.nrows * n);
        let block_rows = self.format.block_rows;
        let n_pairs = block_rows.div_ceil(2);
        let col_tiles = n.div_ceil(BLOCK_DIM);
        let nrows = self.format.nrows;

        // Warp grid: block-row pairs × output column tiles.
        let counters = gpu.launch(n_pairs * col_tiles, |ctx| {
            let pair = ctx.warp_id / col_tiles;
            let tile = ctx.warp_id % col_tiles;
            let br0 = 2 * pair;
            let br1 = br0 + 1;
            let lo0 = ctx.read(&self.d_block_row_ptr, br0) as usize;
            let hi0 = ctx.read(&self.d_block_row_ptr, br0 + 1) as usize;
            let hi1 = if br1 < block_rows {
                ctx.read(&self.d_block_row_ptr, br1 + 1) as usize
            } else {
                hi0
            };
            let (len0, len1) = (hi0 - lo0, hi1 - hi0);

            let mut a_frag = Fragment::new(FragKind::MatrixA);
            let mut b_frag = Fragment::new(FragKind::MatrixB);
            let mut acc = Fragment::new(FragKind::Accumulator);
            ctx.ops(3);

            for i in 0..len0.max(len1) {
                ctx.ops(2);
                for (cond, k, reg_base) in
                    [(i < len0, lo0 + i, 0usize), (i < len1, hi0 + i, 6usize)]
                {
                    if cond {
                        let bc = ctx.read(&self.d_block_cols, k) as usize;
                        let a = decode_matrix_block(
                            ctx,
                            &self.d_bitmaps,
                            &self.d_block_offsets,
                            &self.d_values,
                            k,
                        );
                        for l in 0..WARP_SIZE {
                            a_frag.write_reg(l, reg_base, a[l].0);
                            a_frag.write_reg(l, reg_base + 1, a[l].1);
                        }
                        ctx.ops(2);
                        self.fill_b_tile(ctx, &d_b, (b.rows, n), (bc, tile), &mut b_frag, reg_base);
                    } else {
                        for l in 0..WARP_SIZE {
                            a_frag.write_reg(l, reg_base, 0.0);
                            a_frag.write_reg(l, reg_base + 1, 0.0);
                        }
                        ctx.ops(1);
                    }
                }
                let c = acc.clone();
                ctx.mma_16x16x16(&mut acc, &a_frag, &b_frag, &c);
            }

            // Extract both diagonal portions: 4 coalesced-ish scatters of
            // 32 elements each (TL reg 0/1 for br0, BR reg 6/7 for br1).
            ctx.ops(4);
            for (br, regs) in [(br0, [0usize, 1]), (br1, [6usize, 7])] {
                if br >= block_rows {
                    continue;
                }
                for reg in regs {
                    let mut writes = [None; WARP_SIZE];
                    for l in 0..WARP_SIZE {
                        let rr = l / 4;
                        let cc = 2 * (l % 4) + (reg % 2);
                        let row = br * BLOCK_DIM + rr;
                        let col = tile * BLOCK_DIM + cc;
                        if row < nrows && col < n {
                            writes[l] =
                                Some(((row * n + col) as u32, acc.read_reg(l, reg)));
                        }
                    }
                    ctx.scatter(&out, &writes);
                }
            }
        });

        let c = Dense { rows: self.format.nrows, cols: n, data: out.to_vec() };
        let time = estimate_time(&counters, &gpu.config);
        SpmmRun { c, counters, time }
    }
}

/// CUDA-core CSR SpMM baseline (row-per-warp, lane-per-output-column) for
/// the extension bench.
pub struct CsrSpmmEngine {
    prep: PrepStats,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    d_row_ptr: DeviceBuffer<u32>,
    d_col_idx: DeviceBuffer<u32>,
    d_values: DeviceBuffer<f32>,
}

impl CsrSpmmEngine {
    /// Uploads the CSR arrays.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let ((rp, ci, v), seconds) =
            timed(|| (csr.row_ptr.clone(), csr.col_idx.clone(), csr.values.clone()));
        CsrSpmmEngine {
            prep: PrepStats { seconds, device_bytes: csr.bytes() as u64 },
            nrows: csr.nrows,
            ncols: csr.ncols,
            nnz: csr.nnz(),
            d_row_ptr: gpu.alloc(rp),
            d_col_idx: gpu.alloc(ci),
            d_values: gpu.alloc(v),
        }
    }

    /// Validates the matrix, then [`CsrSpmmEngine::prepare`]s.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        prepare_validated(gpu, csr, Self::prepare)
    }

    /// Preprocessing stats.
    pub fn prep(&self) -> PrepStats {
        self.prep
    }

    /// Matrix nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Executes `C = A × B`. Panics on malformed operands — fallible
    /// callers use [`CsrSpmmEngine::try_run`].
    pub fn run(&self, gpu: &Gpu, b: &Dense) -> SpmmRun {
        self.try_run(gpu, b).expect("SpMM operands must be well-formed")
    }

    /// Fallible launch with the same strict `Dense` shape validation as
    /// the Spaden engine: one warp per row, lanes over output columns.
    pub fn try_run(&self, gpu: &Gpu, b: &Dense) -> Result<SpmmRun, EngineError> {
        if b.rows != self.ncols {
            return Err(EngineError::ShapeMismatch { expected: self.ncols, got: b.rows });
        }
        if b.cols == 0 {
            return Err(EngineError::Validation("B must have at least one column".into()));
        }
        if b.data.len() != b.rows * b.cols {
            return Err(EngineError::Validation(format!(
                "B backing buffer has {} values for a {}x{} shape",
                b.data.len(),
                b.rows,
                b.cols
            )));
        }
        let n = b.cols;
        let d_b = gpu.alloc(b.data.clone());
        let out = gpu.alloc_output(self.nrows * n);
        let nrows = self.nrows;

        let counters = gpu.launch(nrows, |ctx| {
            let r = ctx.warp_id;
            let lo = ctx.read(&self.d_row_ptr, r) as usize;
            let hi = ctx.read(&self.d_row_ptr, r + 1) as usize;
            ctx.ops(2);
            let mut acc = [0.0f32; WARP_SIZE];
            for e in lo..hi {
                let col = ctx.read(&self.d_col_idx, e) as usize;
                let val = ctx.read(&self.d_values, e);
                // Lanes cover output columns: coalesced row read of B.
                let mut idx = [None; WARP_SIZE];
                for l in 0..n.min(WARP_SIZE) {
                    idx[l] = Some((col * n + l) as u32);
                }
                let brow = ctx.gather(&d_b, &idx);
                ctx.ops(2);
                for l in 0..n.min(WARP_SIZE) {
                    acc[l] += val * brow[l];
                }
            }
            ctx.ops(1);
            let mut writes = [None; WARP_SIZE];
            for l in 0..n.min(WARP_SIZE) {
                writes[l] = Some(((r * n + l) as u32, acc[l]));
            }
            ctx.scatter(&out, &writes);
        });

        let c = Dense { rows: self.nrows, cols: n, data: out.to_vec() };
        let time = estimate_time(&counters, &gpu.config);
        Ok(SpmmRun { c, counters, time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::dense::spmm_reference;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn check_spmm(csr: &Csr, n: usize) {
        let b = Dense::from_fn(csr.ncols, n, |r, c| ((r * 3 + c * 7) % 9) as f32 * 0.25 - 1.0);
        let gpu = Gpu::new(GpuConfig::l40());
        let run = SpadenSpmmEngine::prepare(&gpu, csr).run(&gpu, &b);
        let want = spmm_reference(csr, &b).unwrap();
        assert_eq!(run.c.rows, want.rows);
        assert_eq!(run.c.cols, want.cols);
        for r in 0..want.rows {
            for c in 0..want.cols {
                let (a, w) = (run.c.get(r, c), want.get(r, c));
                let tol = csr.row_nnz(r) as f32 * 4.0 * 2.0f32.powi(-10) + 1e-3;
                assert!((a - w).abs() <= tol, "({r},{c}): {a} vs {w}");
            }
        }
    }

    #[test]
    fn matches_reference_blocked_n8() {
        let csr = gen::generate_blocked(
            128,
            90,
            Placement::Banded { bandwidth: 4 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            71,
        );
        check_spmm(&csr, 8);
    }

    #[test]
    fn matches_reference_random_n16() {
        check_spmm(&gen::random_uniform(100, 90, 1200, 73), 16);
    }

    #[test]
    fn matches_reference_ragged_n5() {
        // n not a multiple of the 8-wide tile.
        check_spmm(&gen::random_uniform(70, 110, 900, 75), 5);
    }

    #[test]
    fn matches_reference_n1_degenerates_to_spmv() {
        check_spmm(&gen::random_uniform(60, 60, 500, 77), 1);
    }

    #[test]
    fn csr_spmm_baseline_matches_reference_exactly() {
        let csr = gen::random_uniform(90, 80, 1000, 79);
        let b = Dense::from_fn(80, 12, |r, c| ((r + c) % 5) as f32);
        let gpu = Gpu::new(GpuConfig::l40());
        let run = CsrSpmmEngine::prepare(&gpu, &csr).run(&gpu, &b);
        let want = spmm_reference(&csr, &b).unwrap();
        for i in 0..want.data.len() {
            assert!((run.c.data[i] - want.data[i]).abs() <= 1e-4 * want.data[i].abs().max(1.0));
        }
    }

    #[test]
    fn spmm_amortises_decode_over_columns() {
        // Same matrix traffic serves 8 output columns: GFLOPS at n=8 must
        // clearly beat 8 independent SpMVs' effective rate.
        let csr = gen::generate_blocked(
            512,
            400,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            81,
        );
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpmmEngine::prepare(&gpu, &csr);
        let b8 = Dense::from_fn(512, 8, |r, c| ((r + c) % 3) as f32);
        let run8 = eng.run(&gpu, &b8);
        let spmv = crate::SpadenEngine::prepare(&gpu, &csr);
        let x = b8.column(0);
        let run1 = crate::SpmvEngine::run(&spmv, &gpu, &x);
        let spmm_flops_rate = run8.gflops(csr.nnz(), 8);
        let spmv_rate = run1.gflops(csr.nnz());
        assert!(
            spmm_flops_rate > 2.0 * spmv_rate,
            "spmm {spmm_flops_rate:.1} vs spmv {spmv_rate:.1} GFLOPS"
        );
    }

    #[test]
    fn try_run_rejects_malformed_operands_with_typed_errors() {
        let csr = gen::random_uniform(64, 48, 400, 85);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpmmEngine::try_prepare(&gpu, &csr).unwrap();
        match eng.try_run(&gpu, &Dense::zeros(47, 4)) {
            Err(EngineError::ShapeMismatch { expected: 48, got: 47 }) => {}
            other => panic!("expected ShapeMismatch, got {:?}", other.map(|r| r.c.rows)),
        }
        match eng.try_run(&gpu, &Dense { rows: 48, cols: 0, data: vec![] }) {
            Err(EngineError::Validation(msg)) => assert!(msg.contains("column"), "{msg}"),
            other => panic!("expected Validation, got {:?}", other.map(|r| r.c.rows)),
        }
        match eng.try_run(&gpu, &Dense { rows: 48, cols: 2, data: vec![0.0; 5] }) {
            Err(EngineError::Validation(msg)) => assert!(msg.contains("backing"), "{msg}"),
            other => panic!("expected Validation, got {:?}", other.map(|r| r.c.rows)),
        }
        let base = CsrSpmmEngine::try_prepare(&gpu, &csr).unwrap();
        assert!(matches!(
            base.try_run(&gpu, &Dense::zeros(47, 4)),
            Err(EngineError::ShapeMismatch { expected: 48, got: 47 })
        ));
        assert!(matches!(
            base.try_run(&gpu, &Dense { rows: 48, cols: 0, data: vec![] }),
            Err(EngineError::Validation(_))
        ));
    }

    #[test]
    fn checked_run_is_bit_identical_without_faults() {
        let csr = gen::generate_blocked(
            256,
            160,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            233,
        );
        let b = Dense::from_fn(256, 6, |r, c| ((r * 5 + c * 13) % 17) as f32 * 0.125 - 1.0);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenSpmmEngine::prepare(&gpu, &csr);
        let plain = eng.run(&gpu, &b);
        let checked = eng.try_run_checked(&gpu, &b).expect("clean gpu must verify");
        assert_eq!(plain.c.data, checked.c.data, "verification must not perturb a clean run");
        assert_eq!(checked.counters.faults_observed, 0);
        assert_eq!(checked.counters.faults_injected, 0);
    }

    #[test]
    fn checked_run_corrects_fragment_faults_per_column() {
        use spaden_gpusim::FaultConfig;
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            235,
        );
        let b = Dense::from_fn(512, 8, |r, c| ((r * 37 + 11 * (c + 1)) % 64) as f32 / 32.0 - 1.0);
        let mut cfg = GpuConfig::l40();
        // In SpMM the whole accumulator tile is extracted, so every
        // corrupted MMA is observable in some output column.
        cfg.faults =
            FaultConfig { seed: 99, fragment_corrupt_rate: 0.2, ..FaultConfig::disabled() };
        let gpu = Gpu::new(cfg);
        let eng = SpadenSpmmEngine::prepare(&gpu, &csr);
        let run = eng.try_run_checked(&gpu, &b).expect("correction must converge");
        assert!(run.counters.faults_injected > 0);
        assert!(run.counters.faults_observed > 0, "full-tile extraction sees the flips");
        let want = spmm_reference(&csr, &b).unwrap();
        for r in 0..want.rows {
            for c in 0..want.cols {
                let (a, w) = (run.c.get(r, c), want.get(r, c));
                let tol = 1e-3_f32.max(w.abs() * 1e-3);
                assert!((a - w).abs() <= tol, "({r},{c}): corrected {a} vs reference {w}");
            }
        }
    }

    #[test]
    fn checked_run_exhausts_retries_under_saturating_faults() {
        use spaden_gpusim::FaultConfig;
        let csr = gen::random_uniform(128, 128, 2000, 237);
        let b = Dense::from_fn(128, 4, |r, c| ((r + c) % 7) as f32 - 3.0);
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig { seed: 7, mem_bit_flip_rate: 1.0, ..FaultConfig::disabled() };
        let gpu = Gpu::new(cfg);
        let eng = SpadenSpmmEngine::prepare(&gpu, &csr);
        match eng.try_run_checked(&gpu, &b) {
            Err(EngineError::CorrectionExhausted { block_rows, retries }) => {
                assert!(block_rows > 0);
                assert_eq!(retries, ABFT_MAX_RETRIES);
            }
            other => panic!("expected CorrectionExhausted, got {:?}", other.map(|r| r.c.rows)),
        }
    }

    #[test]
    fn utilisation_128_of_256_per_mma() {
        // MMA count equals the SpMV kernel's per column-tile: for n=8 one
        // tile, so identical MMAs but 8x the useful outputs.
        let csr = gen::generate_blocked(
            128,
            100,
            Placement::Scattered,
            &FillDist::Uniform { lo: 4, hi: 20 },
            83,
        );
        let gpu = Gpu::new(GpuConfig::l40());
        let b = Dense::zeros(128, 8);
        let spmm = SpadenSpmmEngine::prepare(&gpu, &csr).run(&gpu, &b);
        let spmv = crate::SpmvEngine::run(
            &crate::SpadenEngine::prepare(&gpu, &csr),
            &gpu,
            &vec![0.0f32; 128],
        );
        assert_eq!(spmm.counters.mma_m16n16k16, spmv.counters.mma_m16n16k16);
    }
}
