//! "Spaden w/o TC" — the §5.3 ablation: identical bitBSR decoding, but the
//! block-vector products run on CUDA cores (per-lane FMAs plus a
//! 4-lane segmented shuffle reduction) instead of a tensor-core MMA.
//!
//! It shares everything with [`crate::SpadenEngine`] except the compute
//! step, isolating the tensor-core contribution the paper quantifies as a
//! 1.47× speedup on the L40.

use crate::bitbsr::BitBsr;
use crate::decode::{decode_matrix_block, decode_vector_segment};
use crate::engine::{prepare_validated, timed, EngineError, PrepStats, SpmvEngine, SpmvRun};
use spaden_gpusim::exec::WARP_SIZE;
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::Gpu;
use spaden_sparse::csr::Csr;
use spaden_sparse::gen::BLOCK_DIM;

/// Issue cycles charged per 8×8 block for the CUDA-core block-vector
/// product that replaces the tensor-core MMA (see the comment at the call
/// site in [`SpadenNoTcEngine::run`]).
pub(crate) const CUDA_BLOCK_PRODUCT_CYCLES: u64 = 96;

/// Spaden-without-tensor-cores, prepared for one matrix.
pub struct SpadenNoTcEngine {
    format: BitBsr,
    prep: PrepStats,
    d_block_row_ptr: DeviceBuffer<u32>,
    d_block_cols: DeviceBuffer<u32>,
    d_bitmaps: DeviceBuffer<u64>,
    d_block_offsets: DeviceBuffer<u32>,
    d_values: DeviceBuffer<F16>,
}

impl SpadenNoTcEngine {
    /// Validating form of [`SpadenNoTcEngine::prepare`]: rejects a
    /// malformed CSR with a typed error so the engine registry can prepare
    /// any variant interchangeably from untrusted input.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        prepare_validated(gpu, csr, Self::prepare)
    }

    /// Converts `csr` to bitBSR and uploads it (same conversion cost as
    /// full Spaden — the formats are identical).
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let (format, seconds) = timed(|| BitBsr::from_csr(csr));
        let prep = PrepStats { seconds, device_bytes: format.bytes() as u64 };
        SpadenNoTcEngine {
            d_block_row_ptr: gpu.alloc(format.block_row_ptr.clone()),
            d_block_cols: gpu.alloc(format.block_cols.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            prep,
        }
    }

    /// Builds an engine from an already-converted bitBSR — the evolving-
    /// matrix path, where the format comes from incremental delta
    /// application (epoch publish) rather than a fresh conversion.
    /// Validates the format; prep time is 0 because no conversion ran.
    pub fn try_from_parts(gpu: &Gpu, format: BitBsr) -> Result<Self, EngineError> {
        format.validate().map_err(|e| EngineError::Validation(e.to_string()))?;
        let prep = PrepStats { seconds: 0.0, device_bytes: format.bytes() as u64 };
        Ok(SpadenNoTcEngine {
            d_block_row_ptr: gpu.alloc(format.block_row_ptr.clone()),
            d_block_cols: gpu.alloc(format.block_cols.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            prep,
        })
    }

    /// The converted format.
    pub fn format(&self) -> &BitBsr {
        &self.format
    }
}

impl SpmvEngine for SpadenNoTcEngine {
    fn name(&self) -> &'static str {
        "Spaden w/o TC"
    }

    fn prep(&self) -> PrepStats {
        self.prep
    }

    fn nnz(&self) -> usize {
        self.format.nnz()
    }

    fn nrows(&self) -> usize {
        self.format.nrows
    }

    fn ncols(&self) -> usize {
        self.format.ncols
    }

    fn run(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        assert_eq!(x.len(), self.format.ncols, "x length mismatch");
        let d_x = gpu.alloc(x.to_vec());
        let y = gpu.alloc_output(self.format.nrows);
        let block_rows = self.format.block_rows;
        let n_pairs = block_rows.div_ceil(2);
        let nrows = self.format.nrows;

        let counters = gpu.launch(n_pairs, |ctx| {
            let br0 = 2 * ctx.warp_id;
            let br1 = br0 + 1;
            let lo0 = ctx.read(&self.d_block_row_ptr, br0) as usize;
            let hi0 = ctx.read(&self.d_block_row_ptr, br0 + 1) as usize;
            let hi1 = if br1 < block_rows {
                ctx.read(&self.d_block_row_ptr, br1 + 1) as usize
            } else {
                hi0
            };
            let (len0, len1) = (hi0 - lo0, hi1 - hi0);

            // Per-warp accumulators for the 16 output rows.
            let mut row_acc = [0.0f32; 2 * BLOCK_DIM];
            ctx.ops(1);

            for (len, base, acc_base) in [(len0, lo0, 0usize), (len1, hi0, BLOCK_DIM)] {
                for i in 0..len {
                    ctx.ops(2); // loop bookkeeping
                    let k = base + i;
                    let bc = ctx.read(&self.d_block_cols, k) as usize;
                    let a = decode_matrix_block(
                        ctx,
                        &self.d_bitmaps,
                        &self.d_block_offsets,
                        &self.d_values,
                        k,
                    );
                    let b = decode_vector_segment(ctx, &d_x, bc, self.format.ncols);
                    // Two FMAs per lane (the pair of decoded elements),
                    // then a 4-lane segmented reduction: lanes 4*dr..4*dr+3
                    // hold row dr's partial sums. Inputs round through f16
                    // exactly as the tensor-core path does.
                    //
                    // Instruction charge: on CUDA cores the block product
                    // is a long dependent sequence (f16->f32 conversions,
                    // predicated FMAs, two shuffle/add ladders, row-select
                    // accumulation) instead of one MMA. We charge
                    // CUDA_BLOCK_PRODUCT_CYCLES issue cycles per block for
                    // that sequence — the single calibrated constant of
                    // this reproduction, set so the tensor-core speedup of
                    // the §5.3 breakdown matches the paper's ~1.47x on the
                    // FEM matrices (see EXPERIMENTS.md).
                    ctx.ops(CUDA_BLOCK_PRODUCT_CYCLES);
                    let mut partial = [0.0f32; WARP_SIZE];
                    for lid in 0..WARP_SIZE {
                        partial[lid] = F16::round_f32(a[lid].0) * F16::round_f32(b[lid].0)
                            + F16::round_f32(a[lid].1) * F16::round_f32(b[lid].1);
                    }
                    let sums = ctx.segmented_reduce_sum(&partial, 4);
                    ctx.ops(1); // accumulate into the row register
                    for dr in 0..BLOCK_DIM {
                        row_acc[acc_base + dr] += sums[4 * dr];
                    }
                }
            }

            // Coalesced 16-row store, identical to the TC kernel's epilogue.
            ctx.ops(4);
            let mut writes = [None; WARP_SIZE];
            for dr in 0..BLOCK_DIM {
                let r0 = br0 * BLOCK_DIM + dr;
                if r0 < nrows {
                    writes[dr] = Some((r0 as u32, row_acc[dr]));
                }
                let r1 = br1 * BLOCK_DIM + dr;
                if br1 < block_rows && r1 < nrows {
                    writes[BLOCK_DIM + dr] = Some((r1 as u32, row_acc[BLOCK_DIM + dr]));
                }
            }
            ctx.scatter(&y, &writes);
        });

        SpmvRun::new(y.to_vec(), counters, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_tc::SpadenEngine;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::gen::{self, FillDist, Placement};

    #[test]
    fn matches_reference() {
        let csr = gen::generate_blocked(
            256,
            160,
            Placement::Banded { bandwidth: 5 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            301,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 13) as f32) * 0.5 - 3.0).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenNoTcEngine::prepare(&gpu, &csr);
        let run = eng.run(&gpu, &x);
        let want = eng.format().spmv_reference(&x).unwrap();
        for (r, (a, w)) in run.y.iter().zip(&want).enumerate() {
            let tol = 1e-3_f32.max(w.abs() * 1e-3);
            assert!((a - w).abs() <= tol, "row {r}: {a} vs {w}");
        }
    }

    #[test]
    fn produces_same_result_as_tc_kernel() {
        // Same format, same decode, different compute units — outputs must
        // agree to f32 accumulation-order tolerance.
        let csr = gen::random_uniform(180, 180, 2500, 303);
        let x: Vec<f32> = (0..180).map(|i| (i as f32 * 0.037).cos()).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let tc = SpadenEngine::prepare(&gpu, &csr).run(&gpu, &x);
        let cc = SpadenNoTcEngine::prepare(&gpu, &csr).run(&gpu, &x);
        for (r, (a, b)) in tc.y.iter().zip(&cc.y).enumerate() {
            assert!((a - b).abs() <= 1e-3_f32.max(b.abs() * 1e-3), "row {r}: {a} vs {b}");
        }
    }

    #[test]
    fn same_memory_traffic_as_tc_but_no_mmas() {
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            305,
        );
        let x = vec![1.0f32; 512];
        let gpu = Gpu::new(GpuConfig::l40());
        let tc = SpadenEngine::prepare(&gpu, &csr).run(&gpu, &x);
        let cc = SpadenNoTcEngine::prepare(&gpu, &csr).run(&gpu, &x);
        assert_eq!(cc.counters.mma_m16n16k16, 0);
        assert!(tc.counters.mma_m16n16k16 > 0);
        // Identical format and decode: DRAM read traffic within 5%.
        let (a, b) = (tc.counters.dram_read_bytes as f64, cc.counters.dram_read_bytes as f64);
        assert!((a - b).abs() / a < 0.05, "tc {a} vs cuda {b}");
        // The CUDA variant issues more arithmetic instructions.
        assert!(cc.counters.cuda_ops > tc.counters.cuda_ops);
    }

    #[test]
    fn prep_equals_spaden_prep_bytes() {
        let csr = gen::random_uniform(128, 128, 1000, 307);
        let gpu = Gpu::new(GpuConfig::l40());
        let a = SpadenEngine::prepare(&gpu, &csr);
        let b = SpadenNoTcEngine::prepare(&gpu, &csr);
        assert_eq!(a.prep().device_bytes, b.prep().device_bytes);
        assert_eq!(b.name(), "Spaden w/o TC");
    }
}
