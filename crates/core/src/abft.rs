//! Algorithm-based fault tolerance (ABFT) for bitBSR SpMV.
//!
//! Classic Huang–Abraham column-sum checksums, at block-row granularity:
//! for block-row `R` with the f16-rounded values the kernel actually
//! multiplies, the identities
//!
//! ```text
//! Σ_{r ∈ R} y[r]      =  Σ_j (Σ_{r ∈ R} A[r, j]) · x̃[j]        (x̃ = f16(x))
//! Σ_{r ∈ R} w_r y[r]  =  Σ_j (Σ_{r ∈ R} w_r A[r, j]) · x̃[j]    (w_r = 1 + r - min R)
//! ```
//!
//! hold exactly in real arithmetic. Both right-hand sides are precomputed
//! at `prepare` time (the plain and row-weighted column sums per
//! block-row, in f64); after a run the left-hand sides are recomputed from
//! `y` and compared within a floating-point tolerance derived from the
//! per-block-row value mass. A mismatch localises silent data corruption —
//! a flipped bit, a dead lane, a corrupted fragment register — to one
//! block-row of 8 output rows, which the engine then recomputes on the
//! scalar path.
//!
//! The weighted checksum is what makes multi-site faults detectable: a
//! corrupted `x̃[j]` (stuck load lane) perturbs `Σ y` by `Δx · Σ_r A[r, j]`,
//! which vanishes when the column sum happens to be ≈0 even though
//! individual rows are badly wrong. The weighted sum is then perturbed by
//! `Δx · Σ_r w_r A[r, j]`, which only also vanishes if both moments of the
//! column are zero. Likewise two faults cancelling in `Σ y` from different
//! rows `r₁ ≠ r₂` leave a weighted residue proportional to `r₁ - r₂`.
//!
//! ## What this scheme cannot catch
//!
//! * **Compensating faults**: corruptions within one block-row whose
//!   effects on *both* `Σ y` and the weighted sum cancel. Requires two
//!   independent cancellations; vanishingly unlikely for bit flips, but
//!   not impossible at extreme fault rates.
//! * **Sub-tolerance faults**: a perturbation below the verification
//!   tolerance. By construction the tolerance (`O(2⁻²³ · nnz)` relative) is
//!   orders of magnitude below the f16 accuracy of the result itself
//!   (`O(2⁻¹⁰ · nnz)`), so an undetected fault is also a harmless one.
//! * **Structural corruption** (row pointers, bitmaps, block columns):
//!   checksums protect values, not control flow. The simulator's fault
//!   model matches this boundary (see `spaden_gpusim::fault`).

use crate::bitbsr::BitBsr;
use crate::delta::DeltaBitBsr;
use spaden_gpusim::half::F16;
use spaden_sparse::dense::Dense;
use spaden_sparse::gen::BLOCK_DIM;

/// Recomputed checksum entries of a single block-row, produced by the one
/// shared accumulation routine so the incremental repair path is
/// *bit-exactly* the computation [`AbftChecksums::build`] performs.
#[derive(Default)]
struct RowEntries {
    cols: Vec<u32>,
    sums: Vec<f64>,
    wsums: Vec<f64>,
    abs: Vec<f64>,
    nnz: u32,
}

/// Accumulates one block-row's checksum entries from its blocks in
/// ascending block-column order. This mirrors the inner loop of
/// [`AbftChecksums::build`] exactly — same block order, same `dc`-outer /
/// `dr`-inner summation, same `a != 0.0` skip — which is what makes
/// incremental recomputation of a touched block-row equal to a full
/// rebuild bit for bit: blocks within a block-row cover disjoint column
/// ranges, so every matrix column's f64 sum is formed in the same order
/// either way.
fn row_entries(blocks: &[(u32, u64, [f32; BLOCK_DIM * BLOCK_DIM])]) -> RowEntries {
    let mut e = RowEntries::default();
    for (bc, bitmap, dense) in blocks {
        e.nnz += bitmap.count_ones();
        for dc in 0..BLOCK_DIM {
            let col = *bc as usize * BLOCK_DIM + dc;
            let mut s = 0.0f64;
            let mut w = 0.0f64;
            let mut a = 0.0f64;
            for dr in 0..BLOCK_DIM {
                let v = dense[dr * BLOCK_DIM + dc] as f64;
                s += v;
                w += (dr + 1) as f64 * v;
                a += v.abs();
            }
            if a != 0.0 {
                e.cols.push(col as u32);
                e.sums.push(s);
                e.wsums.push(w);
                e.abs.push(a);
            }
        }
    }
    e
}

/// Borrowed raw arrays of an [`AbftChecksums`] — see
/// [`AbftChecksums::raw_parts`].
#[derive(Debug, Clone, Copy)]
pub struct AbftParts<'a> {
    /// Matrix rows.
    pub nrows: usize,
    /// Matrix columns.
    pub ncols: usize,
    /// CSR-like offsets: block-row `br` owns entries `ptr[br]..ptr[br+1]`.
    pub ptr: &'a [u32],
    /// Matrix column index per checksum entry.
    pub cols: &'a [u32],
    /// Plain column sums (f64).
    pub sums: &'a [f64],
    /// Row-weighted column sums (f64).
    pub wsums: &'a [f64],
    /// Absolute value mass per column (f64, tolerance scaling).
    pub abs: &'a [f64],
    /// Stored nonzeros per block-row.
    pub nnz_br: &'a [u32],
}

/// Column-sum checksums of a bitBSR matrix, one group per block-row.
///
/// CSR-like layout: block-row `br` owns entries `ptr[br] .. ptr[br+1]` of
/// `cols` / `sums` / `abs`. Within a block-row the block columns are
/// sorted and unique, so each matrix column appears at most once.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftChecksums {
    nrows: usize,
    ncols: usize,
    ptr: Vec<u32>,
    /// Matrix column index per checksum entry.
    cols: Vec<u32>,
    /// `Σ_r A[r, col]` over the block-row, from the stored f16 values.
    sums: Vec<f64>,
    /// `Σ_r (1 + dr) A[r, col]` — the row-weighted column sum (`dr` is the
    /// row offset within the block-row).
    wsums: Vec<f64>,
    /// `Σ_r |A[r, col]|` — the value mass that scales the tolerance.
    abs: Vec<f64>,
    /// Stored nonzeros per block-row (tolerance scaling).
    nnz_br: Vec<u32>,
}

impl AbftChecksums {
    /// Precomputes the checksums for `format` (done once at `prepare`).
    pub fn build(format: &BitBsr) -> Self {
        let mut ptr = Vec::with_capacity(format.block_rows + 1);
        ptr.push(0u32);
        let mut cols = Vec::new();
        let mut sums = Vec::new();
        let mut wsums = Vec::new();
        let mut abs = Vec::new();
        let mut nnz_br = Vec::with_capacity(format.block_rows);
        for br in 0..format.block_rows {
            let lo = format.block_row_ptr[br] as usize;
            let hi = format.block_row_ptr[br + 1] as usize;
            let mut n = 0u32;
            for k in lo..hi {
                let bc = format.block_cols[k] as usize;
                let dense = format.decode_block(k);
                n += format.block_nnz(k) as u32;
                for dc in 0..BLOCK_DIM {
                    let col = bc * BLOCK_DIM + dc;
                    let mut s = 0.0f64;
                    let mut w = 0.0f64;
                    let mut a = 0.0f64;
                    for dr in 0..BLOCK_DIM {
                        let v = dense[dr * BLOCK_DIM + dc] as f64;
                        s += v;
                        w += (dr + 1) as f64 * v;
                        a += v.abs();
                    }
                    if a != 0.0 {
                        cols.push(col as u32);
                        sums.push(s);
                        wsums.push(w);
                        abs.push(a);
                    }
                }
            }
            ptr.push(cols.len() as u32);
            nnz_br.push(n);
        }
        AbftChecksums {
            nrows: format.nrows,
            ncols: format.ncols,
            ptr,
            cols,
            sums,
            wsums,
            abs,
            nnz_br,
        }
    }

    /// Builds the checksums of the *logical* matrix of a [`DeltaBitBsr`]
    /// (base blocks merged with pending side-buffer blocks) — the audit
    /// reference the incremental repair path is compared against, and,
    /// because [`DeltaBitBsr::compact`] is bit-identical to a rebuild,
    /// also exactly `AbftChecksums::build(compacted_format)`.
    pub fn build_logical(m: &DeltaBitBsr) -> Self {
        let base = m.base();
        let mut ptr = Vec::with_capacity(base.block_rows + 1);
        ptr.push(0u32);
        let mut cols = Vec::new();
        let mut sums = Vec::new();
        let mut wsums = Vec::new();
        let mut abs = Vec::new();
        let mut nnz_br = Vec::with_capacity(base.block_rows);
        for br in 0..base.block_rows {
            let e = row_entries(&m.logical_block_row(br));
            cols.extend_from_slice(&e.cols);
            sums.extend_from_slice(&e.sums);
            wsums.extend_from_slice(&e.wsums);
            abs.extend_from_slice(&e.abs);
            ptr.push(cols.len() as u32);
            nnz_br.push(e.nnz);
        }
        AbftChecksums { nrows: base.nrows, ncols: base.ncols, ptr, cols, sums, wsums, abs, nnz_br }
    }

    /// Splices freshly recomputed entries for `touched` (sorted, unique
    /// block-row indices) into the CSR-like entry arrays, leaving every
    /// untouched block-row's entries byte-identical.
    fn splice_block_rows(&mut self, touched: &[usize], rows: Vec<RowEntries>) {
        debug_assert_eq!(touched.len(), rows.len());
        debug_assert!(touched.windows(2).all(|w| w[0] < w[1]), "touched must be sorted+unique");
        assert!(
            touched.iter().all(|&br| br < self.block_rows()),
            "touched block-row out of range"
        );
        let grow: usize = rows.iter().map(|e| e.cols.len()).sum();
        let mut ptr = Vec::with_capacity(self.ptr.len());
        ptr.push(0u32);
        let mut cols = Vec::with_capacity(self.cols.len() + grow);
        let mut sums = Vec::with_capacity(cols.capacity());
        let mut wsums = Vec::with_capacity(cols.capacity());
        let mut abs = Vec::with_capacity(cols.capacity());
        for br in 0..self.block_rows() {
            match touched.binary_search(&br) {
                Ok(i) => {
                    let e = &rows[i];
                    cols.extend_from_slice(&e.cols);
                    sums.extend_from_slice(&e.sums);
                    wsums.extend_from_slice(&e.wsums);
                    abs.extend_from_slice(&e.abs);
                    self.nnz_br[br] = e.nnz;
                }
                Err(_) => {
                    let lo = self.ptr[br] as usize;
                    let hi = self.ptr[br + 1] as usize;
                    cols.extend_from_slice(&self.cols[lo..hi]);
                    sums.extend_from_slice(&self.sums[lo..hi]);
                    wsums.extend_from_slice(&self.wsums[lo..hi]);
                    abs.extend_from_slice(&self.abs[lo..hi]);
                }
            }
            ptr.push(cols.len() as u32);
        }
        self.ptr = ptr;
        self.cols = cols;
        self.sums = sums;
        self.wsums = wsums;
        self.abs = abs;
    }

    /// Incremental repair against the *logical* matrix: recomputes only
    /// the `touched` block-rows (sorted, unique). The audit mode of
    /// [`crate::EvolvingMatrix`] proves this exactly equals
    /// [`AbftChecksums::build_logical`] from scratch.
    pub fn repair_block_rows(&mut self, m: &DeltaBitBsr, touched: &[usize]) {
        let rows = touched.iter().map(|&br| row_entries(&m.logical_block_row(br))).collect();
        self.splice_block_rows(touched, rows);
    }

    /// Incremental repair against a plain [`BitBsr`] (the *base* format a
    /// tensor-core engine actually runs on — its in-block splices shift
    /// values without going through the side buffer).
    pub fn repair_block_rows_base(&mut self, base: &BitBsr, touched: &[usize]) {
        let rows = touched
            .iter()
            .map(|&br| {
                let lo = base.block_row_ptr[br] as usize;
                let hi = base.block_row_ptr[br + 1] as usize;
                let blocks: Vec<_> = (lo..hi)
                    .map(|k| (base.block_cols[k], base.bitmaps[k], base.decode_block(k)))
                    .collect();
                row_entries(&blocks)
            })
            .collect();
        self.splice_block_rows(touched, rows);
    }

    /// Number of block-rows covered.
    pub fn block_rows(&self) -> usize {
        self.nnz_br.len()
    }

    /// Host memory held by the checksums, in bytes.
    pub fn bytes(&self) -> usize {
        self.ptr.len() * 4 + self.cols.len() * (4 + 8 + 8 + 8) + self.nnz_br.len() * 4
    }

    /// Extracts the checksums of block-rows `lo..hi` as a standalone
    /// checksum set over a shard's *local* output (row 0 of the slice is
    /// global row `lo * BLOCK_DIM`). Column indices stay global — shards
    /// share the full `x` — and the row weights are relative to each
    /// block-row's own first row, so the sliced sums are bit-for-bit the
    /// ones the full matrix was prepared with: sliced, never recomputed.
    pub fn slice_block_rows(&self, lo: usize, hi: usize) -> AbftChecksums {
        assert!(lo <= hi && hi <= self.block_rows(), "slice {lo}..{hi} of {}", self.block_rows());
        let e_lo = self.ptr[lo] as usize;
        let e_hi = self.ptr[hi] as usize;
        let nrows = if hi == self.block_rows() {
            self.nrows.saturating_sub(lo * BLOCK_DIM)
        } else {
            (hi - lo) * BLOCK_DIM
        };
        AbftChecksums {
            nrows,
            ncols: self.ncols,
            ptr: self.ptr[lo..=hi].iter().map(|&p| p - e_lo as u32).collect(),
            cols: self.cols[e_lo..e_hi].to_vec(),
            sums: self.sums[e_lo..e_hi].to_vec(),
            wsums: self.wsums[e_lo..e_hi].to_vec(),
            abs: self.abs[e_lo..e_hi].to_vec(),
            nnz_br: self.nnz_br[lo..hi].to_vec(),
        }
    }

    /// Borrowed view of the raw checksum arrays, in CSR-entry layout —
    /// the durability layer's serialization source. Restoring through
    /// [`AbftChecksums::from_raw_parts`] with these exact arrays yields a
    /// checksum set that compares `==` (f64-exact) to this one.
    pub fn raw_parts(&self) -> AbftParts<'_> {
        AbftParts {
            nrows: self.nrows,
            ncols: self.ncols,
            ptr: &self.ptr,
            cols: &self.cols,
            sums: &self.sums,
            wsums: &self.wsums,
            abs: &self.abs,
            nnz_br: &self.nnz_br,
        }
    }

    /// Reassembles a checksum set from raw arrays (snapshot restore),
    /// validating the CSR-entry invariants so a corrupted snapshot can
    /// never produce a structurally broken verifier. Content integrity
    /// (the sums actually matching a matrix) is the caller's job — the
    /// evolve layer's restore path audits them against from-scratch
    /// builds.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        ptr: Vec<u32>,
        cols: Vec<u32>,
        sums: Vec<f64>,
        wsums: Vec<f64>,
        abs: Vec<f64>,
        nnz_br: Vec<u32>,
    ) -> Result<Self, String> {
        let block_rows = nrows.div_ceil(BLOCK_DIM);
        if ptr.len() != block_rows + 1 {
            return Err(format!("ptr length {} != block_rows {} + 1", ptr.len(), block_rows));
        }
        if nnz_br.len() != block_rows {
            return Err(format!("nnz_br length {} != block_rows {}", nnz_br.len(), block_rows));
        }
        if ptr.first() != Some(&0) || *ptr.last().expect("non-empty") as usize != cols.len() {
            return Err("ptr must start at 0 and end at the entry count".into());
        }
        if ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("ptr must be monotone".into());
        }
        if sums.len() != cols.len() || wsums.len() != cols.len() || abs.len() != cols.len() {
            return Err("entry arrays must have equal length".into());
        }
        for br in 0..block_rows {
            let e = &cols[ptr[br] as usize..ptr[br + 1] as usize];
            if e.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("block-row {br} columns not sorted unique"));
            }
            if e.iter().any(|&c| c as usize >= ncols) {
                return Err(format!("block-row {br} column out of range"));
            }
        }
        Ok(AbftChecksums { nrows, ncols, ptr, cols, sums, wsums, abs, nnz_br })
    }

    /// Checks one block-row of `y` against its checksum. `true` = passes.
    ///
    /// NaN-safe: a NaN or infinity anywhere in the block-row's outputs
    /// fails the comparison and is reported as a fault.
    pub fn check_block_row(&self, br: usize, x: &[f32], y: &[f32]) -> bool {
        self.check_block_row_with(br, |c| x[c], |r| y[r])
    }

    /// The shared block-row check over accessor closures: `x_at(col)` reads
    /// the multiplicand, `y_at(row)` the product. The contiguous SpMV path
    /// and the strided per-column SpMM path both funnel through here, so a
    /// batched sweep is held to exactly the same tolerance discipline as a
    /// single request.
    fn check_block_row_with(
        &self,
        br: usize,
        x_at: impl Fn(usize) -> f32,
        y_at: impl Fn(usize) -> f32,
    ) -> bool {
        let r_lo = br * BLOCK_DIM;
        let r_hi = ((br + 1) * BLOCK_DIM).min(self.nrows);
        let mut got = 0.0f64;
        let mut got_w = 0.0f64;
        for r in r_lo..r_hi {
            let v = y_at(r) as f64;
            got += v;
            got_w += (r - r_lo + 1) as f64 * v;
        }
        let mut expect = 0.0f64;
        let mut expect_w = 0.0f64;
        let mut scale = 0.0f64;
        for e in self.ptr[br] as usize..self.ptr[br + 1] as usize {
            let xt = F16::round_f32(x_at(self.cols[e] as usize)) as f64;
            expect += self.sums[e] * xt;
            expect_w += self.wsums[e] * xt;
            scale += self.abs[e] * xt.abs();
        }
        // The kernel accumulates each y[r] in f32 over f16·f16 products;
        // summing the 8 rows here is f64 (error-free). Worst-case rounding
        // is linear in the block-row nonzero count; the constant leaves
        // headroom for the pairing kernel's accumulation order. Injected
        // faults flip high-order bits, perturbing Σy proportionally to the
        // corrupted value — far above this bound. The weighted sum scales
        // every term by at most BLOCK_DIM, so its tolerance does too.
        let tol = 2.0 * 2.0f64.powi(-23) * scale * (self.nnz_br[br] as f64 + 16.0) + 1e-7;
        // Written so NaN comparisons count as failures.
        (got - expect).abs() <= tol && (got_w - expect_w).abs() <= BLOCK_DIM as f64 * tol
    }

    /// Verifies all of `y`, returning the failing block-rows (empty = the
    /// run passes both the global and every per-block-row check).
    pub fn verify(&self, x: &[f32], y: &[f32]) -> Vec<usize> {
        (0..self.block_rows()).filter(|&br| !self.check_block_row(br, x, y)).collect()
    }

    /// Checks one block-row of output column `j` of a batched SpMM
    /// `C = A·B`. Column `j` of `C` is exactly `A · B[:, j]`, so the same
    /// precomputed block-row column sums verify it — the accessors stride
    /// through the row-major `Dense` operands instead of slicing.
    pub fn check_block_row_column(&self, br: usize, b: &Dense, c: &Dense, j: usize) -> bool {
        self.check_block_row_with(br, |col| b.get(col, j), |r| c.get(r, j))
    }

    /// Verifies output column `j` of `C = A·B`, returning its failing
    /// block-rows (same contract as [`AbftChecksums::verify`] on the
    /// equivalent SpMV).
    pub fn verify_column(&self, b: &Dense, c: &Dense, j: usize) -> Vec<usize> {
        (0..self.block_rows())
            .filter(|&br| !self.check_block_row_column(br, b, c, j))
            .collect()
    }

    /// Verifies every output column of a batched sweep `C = A·B`. Returns
    /// `(column, failing block-rows)` per failing column — a fault
    /// localised to 8 output rows of one request's response, just as in
    /// the SpMV path.
    pub fn verify_spmm(&self, b: &Dense, c: &Dense) -> Vec<(usize, Vec<usize>)> {
        (0..b.cols)
            .filter_map(|j| {
                let bad = self.verify_column(b, c, j);
                (!bad.is_empty()).then_some((j, bad))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn make_x(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 + 11) % 64) as f32 / 32.0 - 1.0).collect()
    }

    fn fixture() -> (BitBsr, Vec<f32>, Vec<f32>) {
        let csr = gen::generate_blocked(
            256,
            160,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            401,
        );
        let b = BitBsr::from_csr(&csr);
        let x = make_x(256);
        let y = b.spmv_reference(&x).unwrap();
        (b, x, y)
    }

    #[test]
    fn clean_reference_output_passes() {
        let (b, x, y) = fixture();
        let sums = AbftChecksums::build(&b);
        assert_eq!(sums.block_rows(), b.block_rows);
        assert!(sums.verify(&x, &y).is_empty());
    }

    #[test]
    fn corrupted_row_is_localised() {
        let (b, x, mut y) = fixture();
        let sums = AbftChecksums::build(&b);
        y[37] += 0.75; // rows 32..40 = block-row 4
        assert_eq!(sums.verify(&x, &y), vec![4]);
    }

    #[test]
    fn nan_and_inf_outputs_are_flagged() {
        let (b, x, y) = fixture();
        let sums = AbftChecksums::build(&b);
        let mut ynan = y.clone();
        ynan[8] = f32::NAN;
        assert!(sums.verify(&x, &ynan).contains(&1));
        let mut yinf = y;
        yinf[200] = f32::INFINITY;
        assert!(sums.verify(&x, &yinf).contains(&25));
    }

    #[test]
    fn every_single_row_corruption_is_caught() {
        let (b, x, y) = fixture();
        let sums = AbftChecksums::build(&b);
        for r in (0..b.nrows).step_by(7) {
            let mut yc = y.clone();
            // A perturbation on the scale of a single f16 product.
            yc[r] += 0.11;
            let bad = sums.verify(&x, &yc);
            assert_eq!(bad, vec![r / BLOCK_DIM], "row {r}");
        }
    }

    #[test]
    fn sum_cancelling_corruption_is_caught_by_weighted_checksum() {
        // Two corruptions in different rows of one block-row whose effects
        // on Σy cancel exactly — invisible to the plain checksum, caught by
        // the row-weighted one.
        let (b, x, mut y) = fixture();
        let sums = AbftChecksums::build(&b);
        y[33] += 0.5;
        y[38] -= 0.5; // both in block-row 4; Σy unchanged
        assert_eq!(sums.verify(&x, &y), vec![4]);
    }

    /// A dense multiplicand whose column `j` is `make_x` salted by `j`.
    fn batch_b(rows: usize, k: usize) -> Dense {
        Dense::from_fn(rows, k, |r, j| ((r * 37 + 11 * (j + 1)) % 64) as f32 / 32.0 - 1.0)
    }

    /// The column-exact product: column `j` of `C` is the SpMV reference
    /// on column `j` of `B`.
    fn batch_c(b: &BitBsr, bd: &Dense) -> Dense {
        let mut c = Dense::zeros(b.nrows, bd.cols);
        for j in 0..bd.cols {
            let y = b.spmv_reference(&bd.column(j)).unwrap();
            for (r, v) in y.iter().enumerate() {
                c.set(r, j, *v);
            }
        }
        c
    }

    #[test]
    fn clean_spmm_columns_pass_columnwise_verification() {
        let (b, _, _) = fixture();
        let sums = AbftChecksums::build(&b);
        let bd = batch_b(b.ncols, 5);
        let c = batch_c(&b, &bd);
        assert!(sums.verify_spmm(&bd, &c).is_empty());
    }

    #[test]
    fn columnwise_check_agrees_with_the_spmv_check_per_column() {
        // Column j of a batched sweep and the equivalent single request
        // must get the same verdict from the same checksums — clean and
        // corrupted alike.
        let (b, _, _) = fixture();
        let sums = AbftChecksums::build(&b);
        let bd = batch_b(b.ncols, 3);
        let mut c = batch_c(&b, &bd);
        c.set(41, 1, c.get(41, 1) + 0.75); // block-row 5, column 1 only
        for j in 0..bd.cols {
            let x = bd.column(j);
            let y = c.column(j);
            assert_eq!(sums.verify_column(&bd, &c, j), sums.verify(&x, &y), "column {j}");
        }
        assert_eq!(sums.verify_spmm(&bd, &c), vec![(1, vec![5])]);
    }

    #[test]
    fn corrupted_spmm_cell_is_localised_to_its_column_and_block_row() {
        let (b, _, _) = fixture();
        let sums = AbftChecksums::build(&b);
        let bd = batch_b(b.ncols, 4);
        let mut c = batch_c(&b, &bd);
        c.set(17, 3, f32::NAN); // rows 16..24 = block-row 2
        let bad = sums.verify_spmm(&bd, &c);
        assert_eq!(bad, vec![(3, vec![2])]);
    }

    #[test]
    fn empty_and_padded_matrices() {
        let b = BitBsr::from_csr(&spaden_sparse::csr::Csr::empty(20, 12));
        let sums = AbftChecksums::build(&b);
        assert!(sums.verify(&make_x(12), &[0.0; 20]).is_empty());
        // Odd dims: last block-row is partial.
        let csr = gen::random_uniform(101, 77, 600, 403);
        let bb = BitBsr::from_csr(&csr);
        let x = make_x(77);
        let y = bb.spmv_reference(&x).unwrap();
        assert!(AbftChecksums::build(&bb).verify(&x, &y).is_empty());
    }

    #[test]
    fn sliced_checksums_verify_sliced_output() {
        let (b, x, y) = fixture();
        let sums = AbftChecksums::build(&b);
        for (lo, hi) in [(0usize, 8usize), (8, 20), (20, 32), (0, 32), (5, 5)] {
            let s = sums.slice_block_rows(lo, hi);
            assert_eq!(s.block_rows(), hi - lo);
            let y_local = &y[lo * BLOCK_DIM..(hi * BLOCK_DIM).min(y.len())];
            assert!(
                s.verify(&x, y_local).is_empty(),
                "clean slice {lo}..{hi} must verify"
            );
        }
    }

    #[test]
    fn sliced_checksums_localise_corruption_to_local_block_row() {
        let (b, x, mut y) = fixture();
        let sums = AbftChecksums::build(&b);
        y[37] += 0.75; // global block-row 4
        let s = sums.slice_block_rows(2, 10);
        let y_local = &y[2 * BLOCK_DIM..10 * BLOCK_DIM];
        assert_eq!(s.verify(&x, y_local), vec![2], "global 4 = local 2");
    }

    #[test]
    fn sliced_checksums_equal_rebuilt_from_sliced_format() {
        // The slice must be *identical* to building checksums from the
        // sliced bitBSR — the "sliced, not recomputed" claim is testable
        // because both paths are exact in f64.
        let (b, _, _) = fixture();
        let sums = AbftChecksums::build(&b);
        for (lo, hi) in [(0usize, 4usize), (4, 17), (17, 32)] {
            let sliced = sums.slice_block_rows(lo, hi);
            let rebuilt = AbftChecksums::build(&b.slice_block_rows(lo, hi));
            assert_eq!(sliced, rebuilt, "slice {lo}..{hi}");
        }
    }

    #[test]
    fn incremental_repair_equals_full_rebuild_bit_for_bit() {
        use crate::delta::DeltaBitBsr;
        use spaden_sparse::delta::{apply_to_csr, Delta, DeltaBatch};
        use spaden_sparse::Pcg64;
        let mut rng = Pcg64::new(11, 0xabf7);
        let mut csr = gen::random_uniform(120, 96, 1100, 909);
        let mut d = DeltaBitBsr::new(BitBsr::from_csr(&csr), 1024);
        let mut logical = AbftChecksums::build_logical(&d);
        let mut base_sums = AbftChecksums::build(d.base());
        for step in 0..8 {
            let mut deltas = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            while deltas.len() < 13 {
                let row = rng.below_usize(csr.nrows) as u32;
                let col = rng.below_usize(csr.ncols) as u32;
                if seen.insert((row, col)) {
                    deltas.push(Delta { row, col, value: rng.range_f32(-2.0, 2.0) });
                }
            }
            let batch = DeltaBatch::new(deltas, csr.nrows, csr.ncols).unwrap();
            csr = apply_to_csr(&csr, &batch).unwrap();
            d.apply(&batch, None).unwrap();
            let touched = batch.touched_block_rows();
            logical.repair_block_rows(&d, &touched);
            base_sums.repair_block_rows_base(d.base(), &touched);
            // The audit claim: incremental repair is EXACTLY the from-scratch
            // build — PartialEq over f64 sums, no tolerance.
            assert_eq!(logical, AbftChecksums::build_logical(&d), "step {step}: logical");
            assert_eq!(base_sums, AbftChecksums::build(d.base()), "step {step}: base");
        }
        // After compaction the logical checksums ARE the base checksums.
        d.compact();
        assert_eq!(*d.base(), BitBsr::from_csr(&csr));
        assert_eq!(logical, AbftChecksums::build(d.base()));
    }

    #[test]
    fn repaired_checksums_still_verify_spmv_output() {
        use crate::delta::DeltaBitBsr;
        use spaden_sparse::delta::{apply_to_csr, Delta, DeltaBatch};
        let csr = gen::random_uniform(64, 64, 500, 515);
        let mut d = DeltaBitBsr::new(BitBsr::from_csr(&csr), 256);
        let mut logical = AbftChecksums::build_logical(&d);
        let batch = DeltaBatch::new(
            vec![
                Delta { row: 3, col: 60, value: 1.5 },
                Delta { row: 40, col: 2, value: -0.75 },
                Delta { row: 41, col: 5, value: 2.25 },
            ],
            64,
            64,
        )
        .unwrap();
        let next = apply_to_csr(&csr, &batch).unwrap();
        d.apply(&batch, None).unwrap();
        logical.repair_block_rows(&d, &batch.touched_block_rows());
        let x = make_x(64);
        let y = BitBsr::from_csr(&next).spmv_reference(&x).unwrap();
        assert!(logical.verify(&x, &y).is_empty(), "repaired sums must accept the new matrix");
        let y_old = BitBsr::from_csr(&csr).spmv_reference(&x).unwrap();
        assert!(!logical.verify(&x, &y_old).is_empty(), "and reject the old one");
    }

    #[test]
    fn checksums_are_linear_in_the_matrix() {
        // The checksum of block-row br must equal 1ᵀ A_br exactly: verify
        // against a dense recomputation.
        let (b, _, _) = fixture();
        let sums = AbftChecksums::build(&b);
        for br in 0..b.block_rows {
            let mut dense_sums = vec![0.0f64; b.ncols];
            let lo = b.block_row_ptr[br] as usize;
            let hi = b.block_row_ptr[br + 1] as usize;
            for k in lo..hi {
                let bc = b.block_cols[k] as usize;
                let d = b.decode_block(k);
                for dr in 0..BLOCK_DIM {
                    for dc in 0..BLOCK_DIM {
                        let c = bc * BLOCK_DIM + dc;
                        if c < b.ncols {
                            dense_sums[c] += d[dr * BLOCK_DIM + dc] as f64;
                        }
                    }
                }
            }
            for e in sums.ptr[br] as usize..sums.ptr[br + 1] as usize {
                assert_eq!(sums.sums[e], dense_sums[sums.cols[e] as usize]);
            }
        }
    }
}
