//! bitCOO: the bitmap-blocking technique applied to COO — the paper's
//! first stated future-work item ("we plan to extend the bitmap-based
//! blocking technique to support additional sparse matrix formats, such
//! as COO").
//!
//! Instead of a CSR over the block grid, every non-empty 8×8 block carries
//! its own (block-row, block-col) coordinates. That costs 4 extra bytes
//! per block but removes the row pointer and, more importantly, the
//! per-block-row work imbalance: the kernel assigns exactly two blocks to
//! every warp regardless of row structure, packs them on the fragment
//! diagonal like Spaden, and combines results with atomic adds (blocks of
//! the same block-row may land in different warps).

use crate::bitbsr::BitBsr;
use crate::decode::{decode_matrix_block, decode_vector_segment};
use crate::engine::{prepare_validated, timed, EngineError, PrepStats, SpmvEngine, SpmvRun};
use spaden_gpusim::exec::{WarpCtx, WARP_SIZE};
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::Gpu;
use spaden_sparse::csr::Csr;
use spaden_sparse::gen::BLOCK_DIM;
use spaden_sparse::types::{SparseError, SparseResult};

/// A sparse matrix in bitCOO format: coordinate-addressed bitmap blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BitCoo {
    /// Rows of the original matrix.
    pub nrows: usize,
    /// Columns of the original matrix.
    pub ncols: usize,
    /// Block-row index per non-empty block.
    pub block_rows_idx: Vec<u32>,
    /// Block-column index per non-empty block.
    pub block_cols_idx: Vec<u32>,
    /// Occupancy bitmap per block (LSB = top-left).
    pub bitmaps: Vec<u64>,
    /// Exclusive scan of per-block popcounts (`Bnnz + 1`).
    pub block_offsets: Vec<u32>,
    /// Packed nonzero values in f16.
    pub values: Vec<F16>,
}

impl BitCoo {
    /// Converts from CSR (via bitBSR, then expanding the row pointer).
    pub fn from_csr(csr: &Csr) -> Self {
        Self::from_bitbsr(&BitBsr::from_csr(csr))
    }

    /// Converts from bitBSR by materialising per-block row coordinates.
    pub fn from_bitbsr(b: &BitBsr) -> Self {
        let mut block_rows_idx = Vec::with_capacity(b.bnnz());
        for br in 0..b.block_rows {
            let lo = b.block_row_ptr[br] as usize;
            let hi = b.block_row_ptr[br + 1] as usize;
            block_rows_idx.extend(std::iter::repeat_n(br as u32, hi - lo));
        }
        BitCoo {
            nrows: b.nrows,
            ncols: b.ncols,
            block_rows_idx,
            block_cols_idx: b.block_cols.clone(),
            bitmaps: b.bitmaps.clone(),
            block_offsets: b.block_offsets.clone(),
            values: b.values.clone(),
        }
    }

    /// Non-empty block count.
    pub fn bnnz(&self) -> usize {
        self.bitmaps.len()
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Device footprint in bytes: one u32 more per block than bitBSR, no
    /// row pointer.
    pub fn bytes(&self) -> usize {
        self.block_rows_idx.len() * 4
            + self.block_cols_idx.len() * 4
            + self.bitmaps.len() * 8
            + self.block_offsets.len() * 4
            + self.values.len() * 2
    }

    /// Structural validation.
    pub fn validate(&self) -> SparseResult<()> {
        let n = self.bnnz();
        if self.block_rows_idx.len() != n || self.block_cols_idx.len() != n {
            return Err(SparseError::LengthMismatch { what: "block coordinate arrays".into() });
        }
        spaden_sparse::types::validate_indices(
            &self.block_rows_idx,
            self.nrows.div_ceil(BLOCK_DIM),
            "block_rows_idx",
        )?;
        spaden_sparse::types::validate_indices(
            &self.block_cols_idx,
            self.ncols.div_ceil(BLOCK_DIM),
            "block_cols_idx",
        )?;
        spaden_sparse::types::validate_offsets(&self.block_offsets, self.nnz(), "block_offsets")?;
        for (k, &bmp) in self.bitmaps.iter().enumerate() {
            if bmp.count_ones() != self.block_offsets[k + 1] - self.block_offsets[k] {
                return Err(SparseError::MalformedOffsets {
                    what: format!("block {k} popcount mismatch"),
                });
            }
        }
        Ok(())
    }
}

/// SpMV engine over bitCOO: perfectly balanced two-blocks-per-warp with
/// atomic result combination.
pub struct BitCooEngine {
    format: BitCoo,
    prep: PrepStats,
    d_block_rows: DeviceBuffer<u32>,
    d_block_cols: DeviceBuffer<u32>,
    d_bitmaps: DeviceBuffer<u64>,
    d_block_offsets: DeviceBuffer<u32>,
    d_values: DeviceBuffer<F16>,
}

impl BitCooEngine {
    /// Validating form of [`BitCooEngine::prepare`]: rejects a malformed
    /// CSR with a typed error so the engine registry can prepare any
    /// variant interchangeably from untrusted input.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        prepare_validated(gpu, csr, Self::prepare)
    }

    /// Converts and uploads.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        let (format, seconds) = timed(|| BitCoo::from_csr(csr));
        #[cfg(debug_assertions)]
        format.validate().expect("bitCOO conversion produced valid format");
        let prep = PrepStats { seconds, device_bytes: format.bytes() as u64 };
        BitCooEngine {
            d_block_rows: gpu.alloc(format.block_rows_idx.clone()),
            d_block_cols: gpu.alloc(format.block_cols_idx.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            prep,
        }
    }

    /// The converted format.
    pub fn format(&self) -> &BitCoo {
        &self.format
    }
}

impl SpmvEngine for BitCooEngine {
    fn name(&self) -> &'static str {
        "Spaden bitCOO"
    }

    fn prep(&self) -> PrepStats {
        self.prep
    }

    fn nnz(&self) -> usize {
        self.format.nnz()
    }

    fn nrows(&self) -> usize {
        self.format.nrows
    }

    fn ncols(&self) -> usize {
        self.format.ncols
    }

    fn run(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        assert_eq!(x.len(), self.format.ncols, "x length mismatch");
        let d_x = gpu.alloc(x.to_vec());
        let y = gpu.alloc_output(self.format.nrows);
        let bnnz = self.format.bnnz();
        let nrows = self.format.nrows;
        let nwarps = bnnz.div_ceil(2);

        let counters = gpu.launch(nwarps, |ctx: &mut WarpCtx| {
            let k0 = 2 * ctx.warp_id;
            let k1 = k0 + 1;
            let mut a_frag = Fragment::new(FragKind::MatrixA);
            let mut b_frag = Fragment::new(FragKind::MatrixB);
            let mut rows = [u32::MAX; 2];
            ctx.ops(2);

            for (slot, k) in [(0usize, k0), (1usize, k1)] {
                let reg_base = 6 * slot; // TL for slot 0, BR for slot 1
                if k >= bnnz {
                    for l in 0..WARP_SIZE {
                        a_frag.write_reg(l, reg_base, 0.0);
                        a_frag.write_reg(l, reg_base + 1, 0.0);
                    }
                    ctx.ops(1);
                    continue;
                }
                rows[slot] = ctx.read(&self.d_block_rows, k);
                let bc = ctx.read(&self.d_block_cols, k) as usize;
                let a = decode_matrix_block(
                    ctx,
                    &self.d_bitmaps,
                    &self.d_block_offsets,
                    &self.d_values,
                    k,
                );
                let b = decode_vector_segment(ctx, &d_x, bc, self.format.ncols);
                for l in 0..WARP_SIZE {
                    a_frag.write_reg(l, reg_base, a[l].0);
                    a_frag.write_reg(l, reg_base + 1, a[l].1);
                    b_frag.write_reg(l, reg_base, b[l].0);
                    b_frag.write_reg(l, reg_base + 1, b[l].1);
                }
                ctx.ops(2);
            }

            let c = Fragment::new(FragKind::Accumulator);
            let mut acc = Fragment::new(FragKind::Accumulator);
            ctx.mma_16x16x16(&mut acc, &a_frag, &b_frag, &c);

            // Atomic combine: other warps may hold blocks of the same rows.
            ctx.ops(3);
            let mut writes = [None; WARP_SIZE];
            for lid in (0..WARP_SIZE).step_by(4) {
                if rows[0] != u32::MAX {
                    let r = rows[0] as usize * BLOCK_DIM + lid / 4;
                    if r < nrows {
                        writes[lid / 4] = Some((r as u32, acc.read_reg(lid, 0)));
                    }
                }
                if rows[1] != u32::MAX {
                    let r = rows[1] as usize * BLOCK_DIM + lid / 4;
                    if r < nrows {
                        writes[8 + lid / 4] = Some((r as u32, acc.read_reg(lid, 6)));
                    }
                }
            }
            ctx.atomic_add(&y, &writes);
        });

        SpmvRun::new(y.to_vec(), counters, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::gen::{self, FillDist, Placement};

    #[test]
    fn roundtrip_structure_from_bitbsr() {
        let csr = gen::random_uniform(120, 120, 1000, 111);
        let b = BitBsr::from_csr(&csr);
        let c = BitCoo::from_bitbsr(&b);
        assert!(c.validate().is_ok());
        assert_eq!(c.bnnz(), b.bnnz());
        assert_eq!(c.nnz(), b.nnz());
        assert_eq!(c.bitmaps, b.bitmaps);
        // Row expansion is consistent with the row pointer.
        for br in 0..b.block_rows {
            let lo = b.block_row_ptr[br] as usize;
            let hi = b.block_row_ptr[br + 1] as usize;
            for k in lo..hi {
                assert_eq!(c.block_rows_idx[k], br as u32);
            }
        }
    }

    #[test]
    fn matches_spaden_output() {
        let csr = gen::generate_blocked(
            256,
            170,
            Placement::Banded { bandwidth: 5 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            113,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 19) as f32) * 0.25 - 2.0).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let coo_run = BitCooEngine::prepare(&gpu, &csr).run(&gpu, &x);
        let bsr_run = crate::SpadenEngine::prepare(&gpu, &csr).run(&gpu, &x);
        for (r, (a, b)) in coo_run.y.iter().zip(&bsr_run.y).enumerate() {
            // Atomic combination reorders float adds across blocks.
            assert!((a - b).abs() <= 2e-3_f32.max(b.abs() * 2e-3), "row {r}: {a} vs {b}");
        }
    }

    #[test]
    fn matches_oracle_on_odd_shapes() {
        let csr = gen::random_uniform(137, 93, 1100, 115);
        let x: Vec<f32> = (0..93).map(|i| (i as f32 * 0.1).cos()).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let run = BitCooEngine::prepare(&gpu, &csr).run(&gpu, &x);
        let oracle = csr.spmv_f64(&x).unwrap();
        for (r, (a, o)) in run.y.iter().zip(&oracle).enumerate() {
            let tol = csr.row_nnz(r) as f64 * 8.0 * 2.0f64.powi(-10) + 1e-3;
            assert!(((*a as f64) - o).abs() <= tol, "row {r}: {a} vs {o}");
        }
    }

    #[test]
    fn perfectly_balanced_warps() {
        // Every warp gets exactly 2 blocks and issues exactly 1 MMA, no
        // matter how skewed the row structure is.
        let csr = gen::scale_free(512, 8000, 1.1, 117);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = BitCooEngine::prepare(&gpu, &csr);
        let run = eng.run(&gpu, &vec![1.0f32; 512]);
        let bnnz = eng.format().bnnz() as u64;
        assert_eq!(run.counters.warps, bnnz.div_ceil(2));
        assert_eq!(run.counters.mma_m16n16k16, bnnz.div_ceil(2));
    }

    #[test]
    fn footprint_is_one_u32_per_block_over_bitbsr() {
        let csr = gen::random_uniform(256, 256, 3000, 119);
        let bsr = BitBsr::from_csr(&csr);
        let coo = BitCoo::from_csr(&csr);
        let expected =
            bsr.bytes() + 4 * bsr.bnnz() - (bsr.block_row_ptr.len()) * 4;
        assert_eq!(coo.bytes(), expected);
    }

    #[test]
    fn empty_matrix() {
        let gpu = Gpu::new(GpuConfig::l40());
        let run = BitCooEngine::prepare(&gpu, &Csr::empty(16, 16)).run(&gpu, &[0.0; 16]);
        assert_eq!(run.y, vec![0.0; 16]);
    }
}
