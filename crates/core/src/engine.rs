//! The common interface every SpMV method implements — Spaden, its
//! ablation variants, and the five baselines — so the bench harness can
//! sweep them uniformly over datasets and GPU configurations.

use spaden_gpusim::{estimate_time, Gpu, KernelCounters, SimTime};
use spaden_sparse::Csr;

/// Typed failure of the checked engine APIs (`try_run` / `run_checked`).
///
/// The legacy panicking entry points (`run`, `prepare`) remain as thin
/// wrappers for benches and one-off scripts; solvers and anything
/// long-running should use the `Result` forms.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `x.len()` does not match the matrix column count.
    ShapeMismatch {
        /// Matrix column count.
        expected: usize,
        /// Supplied vector length.
        got: usize,
    },
    /// The prepared format failed structural validation.
    Validation(String),
    /// ABFT verification still failed after the bounded recompute retries
    /// — faults are arriving faster than the recovery path can clear them.
    CorrectionExhausted {
        /// Block-rows still failing verification when retries ran out.
        block_rows: usize,
        /// Recompute rounds attempted.
        retries: usize,
    },
    /// An external checksum verification of an engine's output failed and
    /// no recovery path was attempted — the result must not be used. The
    /// serving layer raises this when a non-ABFT ladder rung produces
    /// output that fails its block-row checksums.
    VerificationFailed {
        /// Block-rows whose checksums did not match.
        block_rows: usize,
    },
    /// A simulated device (or the whole fleet) was lost mid-request. The
    /// multi-device shard scheduler raises this when redistribution runs
    /// out of survivors; transient, because a later request may see
    /// devices restored or be servable by a single-device rung.
    DeviceLost {
        /// Devices still alive when the request gave up.
        survivors: usize,
    },
    /// SimSan's f16 numerical guard rails fired during the run: values
    /// overflowed to ±Inf, underflowed to zero above the tolerance, or a
    /// NaN was produced. The output may be poisoned and must not be
    /// served. Transient in the failover sense — not because a retry of
    /// the same engine would help (the scalar recompute rounds through
    /// f16 too), but because a lower ladder rung computing in f32 can
    /// serve the same request cleanly.
    NumericalHazard {
        /// f16 overflow-to-Inf events observed.
        overflow: usize,
        /// f16 underflow-to-zero events above the tolerance.
        underflow: usize,
        /// NaNs produced or propagated.
        nan: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShapeMismatch { expected, got } => {
                write!(f, "x length mismatch: matrix has {expected} columns, x has {got}")
            }
            EngineError::Validation(what) => write!(f, "format validation failed: {what}"),
            EngineError::CorrectionExhausted { block_rows, retries } => write!(
                f,
                "ABFT correction exhausted: {block_rows} block-row(s) still failing after \
                 {retries} recompute round(s)"
            ),
            EngineError::VerificationFailed { block_rows } => {
                write!(f, "output verification failed on {block_rows} block-row(s)")
            }
            EngineError::DeviceLost { survivors } => {
                write!(f, "device lost mid-request: {survivors} device(s) still alive")
            }
            EngineError::NumericalHazard { overflow, underflow, nan } => write!(
                f,
                "numerical hazard: {overflow} f16 overflow(s), {underflow} underflow(s), \
                 {nan} NaN(s) — output may be poisoned"
            ),
        }
    }
}

impl EngineError {
    /// True for failures that a retry (a fresh launch drawing fresh fault
    /// sites) or a different engine might clear; false for failures of the
    /// request itself (wrong shape, malformed format), which no amount of
    /// retrying fixes. Retry/failover policies branch on this.
    pub fn is_transient(&self) -> bool {
        match self {
            EngineError::ShapeMismatch { .. } | EngineError::Validation(_) => false,
            EngineError::CorrectionExhausted { .. }
            | EngineError::VerificationFailed { .. }
            | EngineError::DeviceLost { .. }
            | EngineError::NumericalHazard { .. } => true,
        }
    }
}

impl std::error::Error for EngineError {}

/// Preprocessing cost of an engine: format-conversion time and the device
/// memory footprint of everything resident during SpMV. These are the two
/// quantities of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepStats {
    /// Host-side conversion wall time in seconds.
    pub seconds: f64,
    /// Device bytes occupied by the converted format (and any auxiliary
    /// buffers the method needs).
    pub device_bytes: u64,
}

impl PrepStats {
    /// Conversion time in nanoseconds per nonzero (Figure 10a, lower).
    pub fn ns_per_nnz(&self, nnz: usize) -> f64 {
        self.seconds * 1e9 / nnz.max(1) as f64
    }

    /// Device bytes per nonzero (Figure 10b, lower).
    pub fn bytes_per_nnz(&self, nnz: usize) -> f64 {
        self.device_bytes as f64 / nnz.max(1) as f64
    }
}

/// One simulated SpMV execution.
#[derive(Debug, Clone)]
pub struct SpmvRun {
    /// The output vector `y = A x`.
    pub y: Vec<f32>,
    /// Merged hardware counters of the launch.
    pub counters: KernelCounters,
    /// Modelled execution time.
    pub time: SimTime,
}

impl SpmvRun {
    /// Builds a run result, deriving time from the counters.
    pub fn new(y: Vec<f32>, counters: KernelCounters, gpu: &Gpu) -> Self {
        let time = estimate_time(&counters, &gpu.config);
        SpmvRun { y, counters, time }
    }

    /// GFLOP/s at `2 * nnz` useful FLOPs.
    pub fn gflops(&self, nnz: usize) -> f64 {
        self.time.gflops(nnz)
    }
}

/// A prepared SpMV method bound to one matrix.
pub trait SpmvEngine: Send + Sync {
    /// Method name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Preprocessing statistics (conversion time, device footprint).
    fn prep(&self) -> PrepStats;

    /// Nonzeros of the underlying matrix (for GFLOPS normalisation).
    fn nnz(&self) -> usize;

    /// Number of matrix rows (`y.len()`).
    fn nrows(&self) -> usize;

    /// Number of matrix columns (the required `x.len()`).
    fn ncols(&self) -> usize;

    /// Executes `y = A x` on the simulated GPU.
    ///
    /// Panics on malformed input (legacy behaviour); prefer
    /// [`SpmvEngine::try_run`] in code that must not unwind.
    fn run(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun;

    /// Executes `y = A x`, returning a typed error instead of panicking
    /// when `x` has the wrong length.
    fn try_run(&self, gpu: &Gpu, x: &[f32]) -> Result<SpmvRun, EngineError> {
        if x.len() != self.ncols() {
            return Err(EngineError::ShapeMismatch { expected: self.ncols(), got: x.len() });
        }
        Ok(self.run(gpu, x))
    }

    /// Executes `y = A x` with whatever end-to-end verification the engine
    /// supports. The default has none — it is [`SpmvEngine::try_run`];
    /// engines with ABFT (e.g. `SpadenEngine`) override it with
    /// verify-and-recompute recovery.
    fn run_checked(&self, gpu: &Gpu, x: &[f32]) -> Result<SpmvRun, EngineError> {
        self.try_run(gpu, x)
    }
}

/// Validates `csr` and, if it is well formed, hands it to the engine's
/// infallible `prepare`. Every engine's `try_prepare` is this one line —
/// the shared front door that turns a malformed matrix into a typed
/// [`EngineError::Validation`] instead of a panic (or worse, a silently
/// corrupt format) deep inside a conversion kernel.
pub fn prepare_validated<E>(
    gpu: &Gpu,
    csr: &Csr,
    prepare: impl FnOnce(&Gpu, &Csr) -> E,
) -> Result<E, EngineError> {
    csr.validate().map_err(|e| EngineError::Validation(e.to_string()))?;
    Ok(prepare(gpu, csr))
}

/// Measures a closure's wall time, returning `(result, seconds)` — used by
/// every engine constructor to time its format conversion.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prep_stats_normalisation() {
        let p = PrepStats { seconds: 1e-3, device_bytes: 2850 };
        assert!((p.ns_per_nnz(1000) - 1000.0).abs() < 1e-9);
        assert!((p.bytes_per_nnz(1000) - 2.85).abs() < 1e-12);
        // Degenerate nnz=0 must not divide by zero.
        assert!(p.ns_per_nnz(0).is_finite());
    }

    #[test]
    fn transient_classification() {
        assert!(!EngineError::ShapeMismatch { expected: 4, got: 3 }.is_transient());
        assert!(!EngineError::Validation("bad".into()).is_transient());
        assert!(EngineError::CorrectionExhausted { block_rows: 1, retries: 3 }.is_transient());
        assert!(EngineError::VerificationFailed { block_rows: 2 }.is_transient());
        assert!(EngineError::DeviceLost { survivors: 0 }.is_transient());
        // Critical for the serving ladder: a numerical hazard must demote
        // to the next rung, not fail the request outright.
        assert!(EngineError::NumericalHazard { overflow: 1, underflow: 0, nan: 0 }
            .is_transient());
    }

    #[test]
    fn numerical_hazard_displays_counts() {
        let e = EngineError::NumericalHazard { overflow: 2, underflow: 1, nan: 3 };
        let s = e.to_string();
        assert!(s.contains("2 f16 overflow"), "{s}");
        assert!(s.contains("1 underflow"), "{s}");
        assert!(s.contains("3 NaN"), "{s}");
    }

    #[test]
    fn verification_failed_displays() {
        let e = EngineError::VerificationFailed { block_rows: 5 };
        assert!(e.to_string().contains("5 block-row"));
    }

    #[test]
    fn prepare_validated_front_door() {
        let gpu = Gpu::new(spaden_gpusim::GpuConfig::l40());
        let good = spaden_sparse::gen::random_uniform(32, 32, 200, 7);
        assert!(prepare_validated(&gpu, &good, |_, c| c.nnz()).is_ok());

        let mut bad = good.clone();
        bad.row_ptr[1] = u32::MAX; // offsets out of bounds
        match prepare_validated(&gpu, &bad, |_, c| c.nnz()) {
            Err(EngineError::Validation(_)) => {}
            other => panic!("expected Validation error, got {other:?}"),
        }
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, s) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
