//! bitBSR decoding — Algorithm 2 of the paper.
//!
//! A warp decodes one 8×8 block: each lane `lid` owns the two consecutive
//! bit positions `2*lid` and `2*lid + 1` of the 64-bit bitmap (element
//! `(lid / 4, 2 * (lid % 4))` and its right neighbour). Set bits load their
//! value from global memory; clear bits *compute* a zero instead of loading
//! — "The zero elements are calculated instead of loading from memory, thus
//! effectively avoiding redundant data movement".
//!
//! The paper's pseudocode writes the value fetch as `load(A_values, lid)`;
//! the real index is the block's value-array offset plus the popcount of
//! the bitmap bits below the lane's bit (values are packed, not strided),
//! which is what [`lane_value_indices`] computes.

use spaden_gpusim::exec::{WarpCtx, WARP_SIZE};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::DeviceBuffer;
use spaden_sparse::gen::BLOCK_DIM;

/// Intra-block value indices for one lane: `(idx1, idx2)` relative to the
/// block's value base, `None` where the bit is clear (Algorithm 2 lines
/// 1–6, with the packed-value offset made explicit).
#[inline]
pub fn lane_value_indices(bitmap: u64, lid: usize) -> (Option<u32>, Option<u32>) {
    debug_assert!(lid < WARP_SIZE);
    let lid_offset = (lid as u64) << 1; // line 1
    let bit1 = 1u64 << lid_offset; // line 2
    let bit2 = 2u64 << lid_offset; // line 3
    let below = (bitmap & (bit1 - 1)).count_ones(); // packed-value prefix
    let v1 = (bitmap & bit1 != 0).then_some(below);
    let v2 = (bitmap & bit2 != 0).then_some(below + (bitmap & bit1 != 0) as u32);
    (v1, v2)
}

/// The input-vector fetch positions for one lane (Algorithm 2 lines 7–8):
/// `B_pos1 = (lid & 3) << 1`, `B_pos2 = B_pos1 + 1` — a repeating pattern
/// where each thread reads two consecutive positions with a spacing of 4
/// threads per 8-element segment.
#[inline]
pub fn lane_vector_positions(lid: usize) -> (usize, usize) {
    let p1 = (lid & 3) << 1;
    (p1, p1 + 1)
}

/// Warp-level matrix decode: reads the block's bitmap and base offset
/// (broadcast loads), then gathers only the values whose bits are set.
/// Returns `(A_val1, A_val2)` per lane.
pub fn decode_matrix_block(
    ctx: &mut WarpCtx,
    bitmaps: &DeviceBuffer<u64>,
    block_offsets: &DeviceBuffer<u32>,
    values: &DeviceBuffer<F16>,
    a_idx: usize,
) -> [(f32, f32); WARP_SIZE] {
    let bmp = ctx.read(bitmaps, a_idx); // line 4 (broadcast)
    let base = ctx.read(block_offsets, a_idx);
    ctx.ops(6); // lines 1-3 + popcount + two predicates

    let mut idx1 = [None; WARP_SIZE];
    let mut idx2 = [None; WARP_SIZE];
    for lid in 0..WARP_SIZE {
        let (v1, v2) = lane_value_indices(bmp, lid);
        // Saturating: a corrupt `base` near u32::MAX must become an
        // out-of-range index (a modelled OOB access SimSan reports), not
        // wrap around to a bogus in-bounds one.
        idx1[lid] = v1.map(|v| base.saturating_add(v));
        idx2[lid] = v2.map(|v| base.saturating_add(v));
    }
    let val1 = ctx.gather(values, &idx1); // line 5 (conditional load)
    let val2 = ctx.gather(values, &idx2); // line 6
    let mut out = [(0.0f32, 0.0f32); WARP_SIZE];
    for lid in 0..WARP_SIZE {
        // Clear bits become computed zeros — written to the fragment
        // registers directly instead of being loaded.
        out[lid] = (
            if idx1[lid].is_some() { val1[lid].to_f32() } else { 0.0 },
            if idx2[lid].is_some() { val2[lid].to_f32() } else { 0.0 },
        );
    }
    out
}

/// Device column index of segment position `pos` in block-column `b_idx`,
/// when the full pair `(pos, pos + 1)` is inside the matrix and the index
/// fits `u32` device addressing. Adversarial block counts (a corrupt
/// `block_cols` entry near `u32::MAX` drives `b_idx * 8` past `u32`) must
/// degrade to the edge-handling path, not wrap into a bogus in-bounds
/// index.
#[inline]
pub fn checked_segment_col(b_idx: usize, pos: usize, ncols: usize) -> Option<u32> {
    let col = b_idx.checked_mul(BLOCK_DIM)?.checked_add(pos)?;
    if col.checked_add(1)? < ncols {
        u32::try_from(col).ok()
    } else {
        None
    }
}

/// Warp-level vector decode (Algorithm 2 lines 7–10): fetches the length-8
/// segment of `x` for block-column `b_idx` in the repeating per-lane
/// pattern. Lanes whose position falls outside the matrix (edge blocks)
/// read zero.
pub fn decode_vector_segment(
    ctx: &mut WarpCtx,
    x: &DeviceBuffer<f32>,
    b_idx: usize,
    ncols: usize,
) -> [(f32, f32); WARP_SIZE] {
    ctx.ops(3); // position arithmetic
    let mut idx = [None; WARP_SIZE];
    for lid in 0..WARP_SIZE {
        let (p1, _) = lane_vector_positions(lid);
        idx[lid] = checked_segment_col(b_idx, p1, ncols);
    }
    let pairs = ctx.gather_pair(x, &idx); // lines 9-10
    let mut out = [(0.0f32, 0.0f32); WARP_SIZE];
    for lid in 0..WARP_SIZE {
        match idx[lid] {
            Some(_) => out[lid] = pairs[lid],
            None => {
                // Edge handling: fetch the surviving scalar (if any)
                // functionally; its traffic is covered by the segment load.
                // Saturating for the same adversarial-count reason.
                let (p1, p2) = lane_vector_positions(lid);
                let c1 = b_idx.saturating_mul(BLOCK_DIM).saturating_add(p1);
                let c2 = b_idx.saturating_mul(BLOCK_DIM).saturating_add(p2);
                out[lid] = (
                    if c1 < ncols { x.get(c1) } else { 0.0 },
                    if c2 < ncols { x.get(c2) } else { 0.0 },
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap_loads_nothing() {
        for lid in 0..32 {
            assert_eq!(lane_value_indices(0, lid), (None, None));
        }
    }

    #[test]
    fn full_bitmap_loads_packed_pairs() {
        for lid in 0..32u32 {
            let (v1, v2) = lane_value_indices(u64::MAX, lid as usize);
            assert_eq!(v1, Some(2 * lid));
            assert_eq!(v2, Some(2 * lid + 1));
        }
    }

    #[test]
    fn single_bit_offsets() {
        // Only bit 5 set: lane 2 owns bits 4,5; its second slot is value 0.
        let bmp = 1u64 << 5;
        assert_eq!(lane_value_indices(bmp, 2), (None, Some(0)));
        assert_eq!(lane_value_indices(bmp, 0), (None, None));
        assert_eq!(lane_value_indices(bmp, 3), (None, None));
    }

    #[test]
    fn prefix_popcount_indexing() {
        // Bits 0, 3, 12, 13 set -> packed values 0, 1, 2, 3.
        let bmp = 0b11_0000_0000_1001u64;
        assert_eq!(lane_value_indices(bmp, 0), (Some(0), None)); // bit 0 set, bit 1 clear
        assert_eq!(lane_value_indices(bmp, 1), (None, Some(1))); // bit 2 clear, bit 3 set
        assert_eq!(lane_value_indices(bmp, 6), (Some(2), Some(3))); // bits 12,13
    }

    #[test]
    fn paper_example_row0_0x01() {
        // Figure 4: row0 = 0x01 — only element (0,0). Lane 0 loads value 0
        // in its first slot, nothing in the second.
        assert_eq!(lane_value_indices(0x01, 0), (Some(0), None));
    }

    #[test]
    fn vector_positions_repeat_every_four_lanes() {
        assert_eq!(lane_vector_positions(0), (0, 1));
        assert_eq!(lane_vector_positions(1), (2, 3));
        assert_eq!(lane_vector_positions(2), (4, 5));
        assert_eq!(lane_vector_positions(3), (6, 7));
        assert_eq!(lane_vector_positions(4), (0, 1)); // wraps
        assert_eq!(lane_vector_positions(31), (6, 7));
    }

    #[test]
    fn indices_cover_all_values_exactly_once() {
        // For any bitmap, the union of all lanes' indices is 0..popcount.
        let bitmaps = [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d, 1 << 63];
        for &bmp in &bitmaps {
            let mut seen = vec![];
            for lid in 0..32 {
                let (a, b) = lane_value_indices(bmp, lid);
                seen.extend(a);
                seen.extend(b);
            }
            seen.sort_unstable();
            let expect: Vec<u32> = (0..bmp.count_ones()).collect();
            assert_eq!(seen, expect, "bitmap {bmp:#x}");
        }
    }

    #[test]
    fn warp_decode_reconstructs_block() {
        use spaden_gpusim::{Gpu, GpuConfig};
        let csr = spaden_sparse::gen::generate_blocked(
            64,
            20,
            spaden_sparse::gen::Placement::Scattered,
            &spaden_sparse::gen::FillDist::Uniform { lo: 3, hi: 60 },
            113,
        );
        let bb = crate::BitBsr::from_csr(&csr);
        let gpu = Gpu::new(GpuConfig::l40());
        let bitmaps = gpu.alloc(bb.bitmaps.clone());
        let offsets = gpu.alloc(bb.block_offsets.clone());
        let values = gpu.alloc(bb.values.clone());
        let k = bb.bnnz() / 2;
        let dense = bb.decode_block(k);
        gpu.launch(1, |ctx| {
            let lanes = decode_matrix_block(ctx, &bitmaps, &offsets, &values, k);
            for lid in 0..32 {
                let (dr, dc) = (lid / 4, 2 * (lid % 4));
                assert_eq!(lanes[lid].0, dense[dr * 8 + dc], "lane {lid} v1");
                assert_eq!(lanes[lid].1, dense[dr * 8 + dc + 1], "lane {lid} v2");
            }
        });
    }

    #[test]
    fn zero_bits_cost_no_traffic() {
        use spaden_gpusim::{Gpu, GpuConfig};
        // One block with a single nonzero: the value gathers touch one
        // sector, not the 4+ sectors a dense 64-value block would need.
        let csr = spaden_sparse::csr::Csr::new(
            8,
            8,
            vec![0, 1, 1, 1, 1, 1, 1, 1, 1],
            vec![0],
            vec![5.0],
        )
        .unwrap();
        let bb = crate::BitBsr::from_csr(&csr);
        let gpu = Gpu::new(GpuConfig::l40());
        let bitmaps = gpu.alloc(bb.bitmaps.clone());
        let offsets = gpu.alloc(bb.block_offsets.clone());
        let values = gpu.alloc(bb.values.clone());
        let c = gpu.launch(1, |ctx| {
            decode_matrix_block(ctx, &bitmaps, &offsets, &values, 0);
        });
        // bitmap sector + offset sector + one value sector; the empty
        // second gather issues but touches nothing.
        assert_eq!(c.sectors_read, 3, "{c:?}");
    }

    #[test]
    fn vector_segment_decode_values_and_traffic() {
        use spaden_gpusim::{Gpu, GpuConfig};
        let gpu = Gpu::new(GpuConfig::l40());
        let x: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let xb = gpu.alloc(x);
        let c = gpu.launch(1, |ctx| {
            let seg = decode_vector_segment(ctx, &xb, 3, 64); // cols 24..32
            for lid in 0..32 {
                let (p1, p2) = lane_vector_positions(lid);
                assert_eq!(seg[lid], ((24 + p1) as f32, (24 + p2) as f32));
            }
        });
        assert_eq!(c.sectors_read, 1, "8 aligned f32 = one sector");
    }

    #[test]
    fn checked_segment_col_rejects_wrapping_block_counts() {
        // Normal case.
        assert_eq!(checked_segment_col(3, 2, 64), Some(26));
        // Pair straddles the edge.
        assert_eq!(checked_segment_col(1, 4, 13), None);
        // b_idx * 8 past u32: must be None, never a truncated index.
        assert_eq!(checked_segment_col(u32::MAX as usize, 0, usize::MAX), None);
        // Products past usize must not panic.
        assert_eq!(checked_segment_col(usize::MAX / 4, 7, usize::MAX), None);
        // Largest representable column.
        let big = (u32::MAX as usize - 7) / BLOCK_DIM;
        assert!(checked_segment_col(big, 0, usize::MAX).is_some());
    }

    #[test]
    fn corrupt_value_base_saturates_to_oob_not_wraparound() {
        use spaden_gpusim::{Gpu, GpuConfig};
        // A block whose offset entry is near u32::MAX: the gather indices
        // must saturate (modelled OOB, functional zero), not wrap into
        // some other block's values.
        let gpu = Gpu::new(GpuConfig::l40());
        let bitmaps = gpu.alloc(vec![0x3u64]); // two nonzeros, lane 0
        let offsets = gpu.alloc(vec![u32::MAX - 1, u32::MAX]);
        let values = gpu.alloc(vec![F16::from_f32(7.0); 4]);
        gpu.launch(1, |ctx| {
            let out = decode_matrix_block(ctx, &bitmaps, &offsets, &values, 0);
            assert_eq!(out[0], (0.0, 0.0), "saturated index reads the default");
        });
    }

    #[test]
    fn vector_segment_edge_block_is_zero_padded() {
        use spaden_gpusim::{Gpu, GpuConfig};
        let gpu = Gpu::new(GpuConfig::l40());
        let xb = gpu.alloc((0..13).map(|i| i as f32).collect::<Vec<_>>());
        gpu.launch(1, |ctx| {
            let seg = decode_vector_segment(ctx, &xb, 1, 13); // cols 8..13 valid
            assert_eq!(seg[0], (8.0, 9.0));
            assert_eq!(seg[2], (12.0, 0.0)); // col 13 out of range
            assert_eq!(seg[3], (0.0, 0.0)); // cols 14, 15 out of range
        });
    }
}
