//! The Spaden SpMV kernel on tensor cores — Algorithms 3 and 4 (§4.3).
//!
//! One warp drives one tensor core over a *pair* of block-rows. Each
//! iteration decodes one block from each row and places them on the
//! fragment diagonal (registers `x[0,1]` for the top-left portion and
//! `x[6,7]` for the bottom-right, per the reverse-engineered mapping of
//! Section 3); the vector fragment receives the two matching length-8
//! segments of `x`, column-broadcast. A single `m16n16k16` MMA then
//! advances both rows — "16 rows from the original matrix are processed in
//! parallel by every tensor core ... a double of DASP's throughput".
//!
//! After the block loop, Algorithm 4 extracts the first column of each
//! diagonal portion (accumulator registers `x[0]` and `x[6]`, lanes with
//! `lid % 4 == 0`) into the output vector.

use crate::abft::AbftChecksums;
use crate::bitbsr::BitBsr;
use crate::decode::{decode_matrix_block, decode_vector_segment};
use crate::engine::{timed, EngineError, PrepStats, SpmvEngine, SpmvRun};
use crate::kernel_cuda::CUDA_BLOCK_PRODUCT_CYCLES;
use spaden_gpusim::exec::{WarpCtx, WARP_SIZE};
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::{ConvertHazard, F16};
use spaden_gpusim::memory::DeviceBuffer;
use spaden_gpusim::{Gpu, KernelCounters};
use spaden_sparse::csr::Csr;
use spaden_sparse::gen::BLOCK_DIM;

/// Upper bound on ABFT verify → scalar-recompute rounds before
/// [`SpadenEngine::try_run_checked`] gives up with
/// [`EngineError::CorrectionExhausted`].
pub const ABFT_MAX_RETRIES: usize = 3;

/// Guards the decode kernels' `u32` index arithmetic: block value bases
/// are `u32` plus an intra-block offset below 64, so a format within one
/// block of `u32::MAX` entries could wrap to a bogus in-bounds index on
/// adversarial block counts. Surfaced as a typed validation error at
/// prepare time instead of a silent wrap inside the kernel.
pub(crate) fn check_index_headroom(nnz: usize, bnnz: usize) -> Result<(), EngineError> {
    let limit = u32::MAX as usize - BLOCK_DIM * BLOCK_DIM;
    if nnz > limit || bnnz > limit {
        return Err(EngineError::Validation(format!(
            "format exceeds u32 index headroom: {nnz} values / {bnnz} blocks (limit {limit})"
        )));
    }
    Ok(())
}

/// How blocks are packed onto the 16×16 fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packing {
    /// Two blocks on the TL/BR diagonal — the paper's design, 16 output
    /// rows per MMA ("a double of DASP's throughput").
    #[default]
    Diagonal,
    /// One block in the TL portion only — the ablation baseline: half the
    /// useful outputs per MMA, twice the MMAs and vector loads.
    Single,
}

/// How data reaches the fragment registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragmentIo {
    /// Direct register writes via the reverse-engineered mapping (§3) —
    /// Spaden's approach.
    #[default]
    Direct,
    /// The conventional WMMA path: materialise the full 16×16 operand in
    /// shared memory, then `wmma::load_matrix_sync` — "preparing a data
    /// buffer of size 256 in shared memory" that §4.3.3 calls redundant.
    SharedMemoryStaged,
}

/// Kernel-variant knobs for the ablation benches; defaults reproduce the
/// paper's Spaden.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpadenConfig {
    /// Fragment packing strategy.
    pub packing: Packing,
    /// Fragment fill path.
    pub fragment_io: FragmentIo,
}

/// Spaden, prepared for one matrix: the bitBSR conversion plus its device
/// buffers.
pub struct SpadenEngine {
    format: BitBsr,
    prep: PrepStats,
    config: SpadenConfig,
    abft: AbftChecksums,
    d_block_row_ptr: DeviceBuffer<u32>,
    d_block_cols: DeviceBuffer<u32>,
    d_bitmaps: DeviceBuffer<u64>,
    d_block_offsets: DeviceBuffer<u32>,
    d_values: DeviceBuffer<F16>,
    /// f16 conversion losses `(overflow, underflow, nan)` counted when the
    /// source values were rounded to f16 at prepare time. Only populated
    /// when the preparing GPU has SimSan enabled; the checked run surfaces
    /// them as [`EngineError::NumericalHazard`] — the loss already
    /// happened, so serving from this format would return poisoned output.
    prep_hazards: (usize, usize, usize),
}

/// Counts f16 conversion hazards over the source values (prepare-time
/// guard rail). Skipped entirely when SimSan is off — prepare stays
/// zero-cost and behaviour-identical.
fn conversion_hazards(values: &[f32], gpu: &Gpu) -> (usize, usize, usize) {
    if !gpu.san_enabled() {
        return (0, 0, 0);
    }
    let tol = gpu.config.san.underflow_tol;
    let mut counts = (0usize, 0usize, 0usize);
    for &v in values {
        match F16::convert_hazard(v, tol) {
            Some(ConvertHazard::Overflow) => counts.0 += 1,
            Some(ConvertHazard::Underflow) => counts.1 += 1,
            Some(ConvertHazard::Nan) => counts.2 += 1,
            None => {}
        }
    }
    counts
}

impl SpadenEngine {
    /// Converts `csr` to bitBSR (timed — Figure 10a) and uploads it.
    /// Panics if the conversion produces an invalid format; prefer
    /// [`SpadenEngine::try_prepare`] in code that must not unwind.
    pub fn prepare(gpu: &Gpu, csr: &Csr) -> Self {
        Self::prepare_with(gpu, csr, SpadenConfig::default())
    }

    /// [`SpadenEngine::prepare`] with explicit variant knobs.
    pub fn prepare_with(gpu: &Gpu, csr: &Csr, config: SpadenConfig) -> Self {
        Self::try_prepare_with(gpu, csr, config).expect("bitBSR conversion produced valid format")
    }

    /// Fallible [`SpadenEngine::prepare`]: validates the converted format
    /// and precomputes the ABFT checksums.
    pub fn try_prepare(gpu: &Gpu, csr: &Csr) -> Result<Self, EngineError> {
        Self::try_prepare_with(gpu, csr, SpadenConfig::default())
    }

    /// Fallible [`SpadenEngine::prepare_with`].
    pub fn try_prepare_with(
        gpu: &Gpu,
        csr: &Csr,
        config: SpadenConfig,
    ) -> Result<Self, EngineError> {
        // Ingress validation: a corrupt CSR (unsorted columns, bad
        // offsets) must be a typed error before conversion, not a
        // mis-built bitmap the kernel then chews on.
        csr.validate().map_err(|e| EngineError::Validation(e.to_string()))?;
        let (format, seconds) = timed(|| BitBsr::from_csr(csr));
        let abft = AbftChecksums::build(&format);
        // Prepare-time guard rail: the f32 → f16 rounding above is where
        // out-of-range values are silently lost, before any kernel runs.
        let prep_hazards = conversion_hazards(&csr.values, gpu);
        Self::from_validated_parts(gpu, format, abft, config, seconds, prep_hazards)
    }

    /// Builds an engine from an already-converted bitBSR slice and its
    /// matching ABFT checksums — the shard path, where both come from
    /// `slice_block_rows` of a prepared full matrix rather than a fresh
    /// conversion. Validates the format and that the checksums cover
    /// exactly its block-rows.
    pub fn try_from_parts(
        gpu: &Gpu,
        format: BitBsr,
        abft: AbftChecksums,
        config: SpadenConfig,
    ) -> Result<Self, EngineError> {
        if abft.block_rows() != format.block_rows {
            return Err(EngineError::Validation(format!(
                "checksum block-rows {} != format block-rows {}",
                abft.block_rows(),
                format.block_rows
            )));
        }
        // The f32 source is gone here (the slice is already f16), so only
        // retained Inf/NaN can still be seen; underflow losses were
        // counted when the full matrix was prepared.
        let vals_f32: Vec<f32> = format.values.iter().map(|v| v.to_f32()).collect();
        let prep_hazards = conversion_hazards(&vals_f32, gpu);
        Self::from_validated_parts(gpu, format, abft, config, 0.0, prep_hazards)
    }

    fn from_validated_parts(
        gpu: &Gpu,
        format: BitBsr,
        abft: AbftChecksums,
        config: SpadenConfig,
        prep_seconds: f64,
        prep_hazards: (usize, usize, usize),
    ) -> Result<Self, EngineError> {
        format.validate().map_err(|e| EngineError::Validation(e.to_string()))?;
        check_index_headroom(format.nnz(), format.bnnz())?;
        let prep = PrepStats { seconds: prep_seconds, device_bytes: format.bytes() as u64 };
        Ok(SpadenEngine {
            d_block_row_ptr: gpu.alloc(format.block_row_ptr.clone()),
            d_block_cols: gpu.alloc(format.block_cols.clone()),
            d_bitmaps: gpu.alloc(format.bitmaps.clone()),
            d_block_offsets: gpu.alloc(format.block_offsets.clone()),
            d_values: gpu.alloc(format.values.clone()),
            format,
            prep,
            config,
            abft,
            prep_hazards,
        })
    }

    /// The converted format (inspection / tests).
    pub fn format(&self) -> &BitBsr {
        &self.format
    }

    /// The precomputed ABFT column-sum checksums.
    pub fn abft(&self) -> &AbftChecksums {
        &self.abft
    }

    /// Decodes one matrix block and its vector segment into the given
    /// fragment portion (`reg_base` 0 = top-left, 6 = bottom-right).
    fn fill_portion(
        &self,
        ctx: &mut WarpCtx,
        x: &DeviceBuffer<f32>,
        a_frag: &mut Fragment,
        b_frag: &mut Fragment,
        block_idx: Option<usize>,
        reg_base: usize,
    ) {
        match block_idx {
            Some(k) => {
                let bc = ctx.read(&self.d_block_cols, k) as usize;
                let a = decode_matrix_block(
                    ctx,
                    &self.d_bitmaps,
                    &self.d_block_offsets,
                    &self.d_values,
                    k,
                );
                let b = decode_vector_segment(ctx, x, bc, self.format.ncols);
                // Algorithm 3 lines 6-7: direct register writes. Lane `l`'s
                // two decoded elements are exactly its registers
                // [reg_base], [reg_base + 1] under the Figure-2 mapping.
                // The executor's pair-write checks the base against that
                // mapping and the values for f16 hazards when SimSan is on.
                ctx.frag_write_pairs(a_frag, reg_base, &a);
                ctx.frag_write_pairs(b_frag, reg_base, &b);
                ctx.ops(2); // register move pairs issue as two instructions
                if self.config.fragment_io == FragmentIo::SharedMemoryStaged {
                    // Conventional WMMA path: the decoded A portion and the
                    // broadcast B portion are first materialised as dense
                    // 8x8 f16 tiles in shared memory and re-loaded with
                    // wmma::load_matrix_sync — the indirection the paper's
                    // direct register access removes.
                    ctx.smem_stage(2 * 64 * 2);
                }
            }
            None => {
                // Row exhausted: zero the A portion so the MMA contributes
                // nothing (computed zeros, not loads).
                ctx.frag_write_pairs(a_frag, reg_base, &[(0.0, 0.0); WARP_SIZE]);
                ctx.ops(1);
            }
        }
    }
}

impl SpmvEngine for SpadenEngine {
    fn name(&self) -> &'static str {
        "Spaden"
    }

    fn prep(&self) -> PrepStats {
        self.prep
    }

    fn nnz(&self) -> usize {
        self.format.nnz()
    }

    fn nrows(&self) -> usize {
        self.format.nrows
    }

    fn ncols(&self) -> usize {
        self.format.ncols
    }

    fn run(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        assert_eq!(x.len(), self.format.ncols, "x length mismatch");
        match self.config.packing {
            Packing::Diagonal => self.run_paired(gpu, x),
            Packing::Single => self.run_single(gpu, x),
        }
    }

    fn run_checked(&self, gpu: &Gpu, x: &[f32]) -> Result<SpmvRun, EngineError> {
        self.try_run_checked(gpu, x)
    }
}

impl SpadenEngine {
    /// ABFT-checked SpMV with graceful degradation.
    ///
    /// The ladder: (1) the tensor-core kernel runs; (2) every block-row's
    /// output is verified against the column-sum checksums; (3) failing
    /// block-rows — faults localised to 8 output rows — are recomputed on
    /// the scalar CUDA-core path (itself subject to injection; each retry
    /// launch draws fresh fault sites); (4) after [`ABFT_MAX_RETRIES`]
    /// rounds that still fail, [`EngineError::CorrectionExhausted`] is
    /// returned instead of silently wrong results.
    ///
    /// Counters of all recovery launches are merged into the returned
    /// run, and `faults_observed` records every failed verification, so
    /// the modelled time includes the cost of recovery.
    pub fn try_run_checked(&self, gpu: &Gpu, x: &[f32]) -> Result<SpmvRun, EngineError> {
        if gpu.san_enabled() && self.prep_hazards != (0, 0, 0) {
            // The format itself is lossy: values overflowed, underflowed,
            // or NaN'd when rounded to f16 at prepare time. Every run of
            // this format reproduces the loss, so refuse up front and let
            // the caller demote to an f32 engine.
            let (overflow, underflow, nan) = self.prep_hazards;
            return Err(EngineError::NumericalHazard { overflow, underflow, nan });
        }
        let numeric_before = gpu.san_numeric_counts();
        let mut run = self.try_run(gpu, x)?;
        if gpu.san_enabled() {
            // SimSan numeric guard rails: any f16 overflow / underflow /
            // NaN observed during this run taints the output. Don't enter
            // the ABFT recompute ladder — the scalar path rounds through
            // f16 too, so a retry reproduces the hazard; surface a typed
            // error and let the caller demote to an f32 engine instead.
            let (ovf, unf, nan) = gpu.san_numeric_counts();
            let (b_ovf, b_unf, b_nan) = numeric_before;
            if (ovf, unf, nan) != numeric_before {
                return Err(EngineError::NumericalHazard {
                    overflow: (ovf - b_ovf) as usize,
                    underflow: (unf - b_unf) as usize,
                    nan: (nan - b_nan) as usize,
                });
            }
        }
        let mut bad = self.abft.verify(x, &run.y);
        let mut retries = 0;
        while !bad.is_empty() {
            run.counters.faults_observed += bad.len() as u64;
            if retries == ABFT_MAX_RETRIES {
                return Err(EngineError::CorrectionExhausted {
                    block_rows: bad.len(),
                    retries,
                });
            }
            retries += 1;
            let rows: Vec<u32> = bad.iter().map(|&b| b as u32).collect();
            let c = self.recompute_block_rows(gpu, x, &rows, &mut run.y);
            run.counters.merge(&c);
            bad.retain(|&br| !self.abft.check_block_row(br, x, &run.y));
        }
        // Re-derive modelled time from the merged counters.
        Ok(SpmvRun::new(run.y, run.counters, gpu))
    }

    /// Recomputes the given block-rows on CUDA cores (the `Spaden w/o TC`
    /// compute step, one warp per block-row) and splices the refreshed
    /// rows into `y`. Returns the launch's counters.
    fn recompute_block_rows(
        &self,
        gpu: &Gpu,
        x: &[f32],
        rows: &[u32],
        y: &mut [f32],
    ) -> KernelCounters {
        let d_rows = gpu.alloc(rows.to_vec());
        let d_x = gpu.alloc(x.to_vec());
        let out = gpu.alloc_output(self.format.nrows);
        let nrows = self.format.nrows;

        let counters = gpu.launch(rows.len(), |ctx| {
            let br = ctx.read(&d_rows, ctx.warp_id) as usize;
            let lo = ctx.read(&self.d_block_row_ptr, br) as usize;
            let hi = ctx.read(&self.d_block_row_ptr, br + 1) as usize;
            let mut row_acc = [0.0f32; BLOCK_DIM];
            ctx.ops(1);
            for k in lo..hi {
                ctx.ops(2);
                let bc = ctx.read(&self.d_block_cols, k) as usize;
                let a = decode_matrix_block(
                    ctx,
                    &self.d_bitmaps,
                    &self.d_block_offsets,
                    &self.d_values,
                    k,
                );
                let b = decode_vector_segment(ctx, &d_x, bc, self.format.ncols);
                ctx.ops(CUDA_BLOCK_PRODUCT_CYCLES);
                let mut partial = [0.0f32; WARP_SIZE];
                for lid in 0..WARP_SIZE {
                    partial[lid] = F16::round_f32(a[lid].0) * F16::round_f32(b[lid].0)
                        + F16::round_f32(a[lid].1) * F16::round_f32(b[lid].1);
                }
                let sums = ctx.segmented_reduce_sum(&partial, 4);
                ctx.ops(1);
                for dr in 0..BLOCK_DIM {
                    row_acc[dr] += sums[4 * dr];
                }
            }
            ctx.ops(2);
            let mut writes = [None; WARP_SIZE];
            for dr in 0..BLOCK_DIM {
                let r = br * BLOCK_DIM + dr;
                if r < nrows {
                    writes[dr] = Some((r as u32, row_acc[dr]));
                }
            }
            ctx.scatter(&out, &writes);
        });

        let fresh = out.to_vec();
        for &br in rows {
            let r_lo = br as usize * BLOCK_DIM;
            let r_hi = (r_lo + BLOCK_DIM).min(nrows);
            y[r_lo..r_hi].copy_from_slice(&fresh[r_lo..r_hi]);
        }
        counters
    }
}

impl SpadenEngine {
    /// The paper's kernel: two block-rows per warp, diagonal packing.
    fn run_paired(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        let d_x = gpu.alloc(x.to_vec());
        let y = gpu.alloc_output(self.format.nrows);
        let block_rows = self.format.block_rows;
        let n_pairs = block_rows.div_ceil(2);
        let nrows = self.format.nrows;

        let counters = gpu.launch(n_pairs, |ctx| {
            let br0 = 2 * ctx.warp_id;
            let br1 = br0 + 1;
            // Block ranges for both rows: ptr[br0], ptr[br0+1] (= row 1's
            // start) and ptr[br1+1].
            let lo0 = ctx.read(&self.d_block_row_ptr, br0) as usize;
            let hi0 = ctx.read(&self.d_block_row_ptr, br0 + 1) as usize;
            let hi1 = if br1 < block_rows {
                ctx.read(&self.d_block_row_ptr, br1 + 1) as usize
            } else {
                hi0
            };
            // Saturating: a corrupt (non-monotonic) pointer pair must not
            // wrap to a near-usize::MAX trip count.
            let (len0, len1) = (hi0.saturating_sub(lo0), hi1.saturating_sub(hi0));

            // Algorithm 3 line 1: initialise fragments.
            let mut a_frag = Fragment::new(FragKind::MatrixA);
            let mut b_frag = Fragment::new(FragKind::MatrixB);
            let mut acc = Fragment::new(FragKind::Accumulator);
            ctx.ops(3);

            for i in 0..len0.max(len1) {
                ctx.ops(2); // loop bookkeeping / index updates (lines 2-3)
                let k0 = (i < len0).then_some(lo0 + i);
                let k1 = (i < len1).then_some(hi0 + i);
                self.fill_portion(ctx, &d_x, &mut a_frag, &mut b_frag, k0, 0);
                self.fill_portion(ctx, &d_x, &mut a_frag, &mut b_frag, k1, 6);
                // Algorithm 3 line 8: accumulate in place.
                let c = acc.clone();
                ctx.mma_16x16x16(&mut acc, &a_frag, &b_frag, &c);
            }

            // Algorithm 4: lanes with lid % 4 == 0 hold column 0 of each
            // portion; one coalesced store covers both rows' 16 outputs.
            ctx.ops(4); // offset computation (lines 2-3) + predicate
            let mut writes = [None; WARP_SIZE];
            for lid in (0..WARP_SIZE).step_by(4) {
                let r0 = br0 * BLOCK_DIM + lid / 4;
                if r0 < nrows {
                    writes[lid / 4] = Some((r0 as u32, acc.read_reg(lid, 0)));
                }
                let r1 = br1 * BLOCK_DIM + lid / 4;
                if br1 < block_rows && r1 < nrows {
                    writes[8 + lid / 4] = Some((r1 as u32, acc.read_reg(lid, 6)));
                }
            }
            ctx.scatter(&y, &writes);
        });

        SpmvRun::new(y.to_vec(), counters, gpu)
    }

    /// Ablation kernel: one block-row per warp, a single block in the
    /// top-left portion — DASP-style 8 useful outputs per MMA.
    fn run_single(&self, gpu: &Gpu, x: &[f32]) -> SpmvRun {
        let d_x = gpu.alloc(x.to_vec());
        let y = gpu.alloc_output(self.format.nrows);
        let block_rows = self.format.block_rows;
        let nrows = self.format.nrows;

        let counters = gpu.launch(block_rows, |ctx| {
            let br = ctx.warp_id;
            let lo = ctx.read(&self.d_block_row_ptr, br) as usize;
            let hi = ctx.read(&self.d_block_row_ptr, br + 1) as usize;

            let mut a_frag = Fragment::new(FragKind::MatrixA);
            let mut b_frag = Fragment::new(FragKind::MatrixB);
            let mut acc = Fragment::new(FragKind::Accumulator);
            ctx.ops(3);

            for k in lo..hi {
                ctx.ops(2);
                self.fill_portion(ctx, &d_x, &mut a_frag, &mut b_frag, Some(k), 0);
                let c = acc.clone();
                ctx.mma_16x16x16(&mut acc, &a_frag, &b_frag, &c);
            }

            ctx.ops(4);
            let mut writes = [None; WARP_SIZE];
            for lid in (0..WARP_SIZE).step_by(4) {
                let r = br * BLOCK_DIM + lid / 4;
                if r < nrows {
                    writes[lid / 4] = Some((r as u32, acc.read_reg(lid, 0)));
                }
            }
            ctx.scatter(&y, &writes);
        });

        SpmvRun::new(y.to_vec(), counters, gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_gpusim::GpuConfig;
    use spaden_sparse::gen::{self, FillDist, Placement};

    fn check_against_reference(csr: &Csr, x: &[f32]) {
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, csr);
        let run = eng.run(&gpu, x);
        let want = eng.format().spmv_reference(x).unwrap();
        assert_eq!(run.y.len(), want.len());
        for (r, (a, w)) in run.y.iter().zip(&want).enumerate() {
            let tol = 1e-3_f32.max(w.abs() * 1e-3);
            assert!((a - w).abs() <= tol, "row {r}: kernel {a} vs reference {w}");
        }
    }

    #[test]
    fn matches_reference_on_blocked_matrix() {
        let csr = gen::generate_blocked(
            256,
            150,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            201,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect();
        check_against_reference(&csr, &x);
    }

    #[test]
    fn matches_reference_on_random_matrix() {
        let csr = gen::random_uniform(200, 200, 3000, 203);
        let x: Vec<f32> = (0..200).map(|i| ((i * 7 % 23) as f32) * 0.5).collect();
        check_against_reference(&csr, &x);
    }

    #[test]
    fn matches_reference_on_odd_dimensions() {
        // Non-multiple-of-8 rows/cols and an odd number of block rows.
        let csr = gen::random_uniform(217, 195, 2500, 205);
        let x: Vec<f32> = (0..195).map(|i| (i as f32 * 0.01).sin()).collect();
        check_against_reference(&csr, &x);
    }

    #[test]
    fn matches_reference_on_single_block_row() {
        let csr = gen::random_uniform(8, 64, 100, 207);
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        check_against_reference(&csr, &x);
    }

    #[test]
    fn matches_full_precision_oracle_within_f16_bounds() {
        let csr = gen::generate_blocked(
            512,
            400,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            209,
        );
        let x: Vec<f32> = (0..512).map(|i| ((i * 11 % 19) as f32) * 0.125).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let run = eng.run(&gpu, &x);
        let oracle = csr.spmv_f64(&x).unwrap();
        for (r, (a, o)) in run.y.iter().zip(&oracle).enumerate() {
            // f16 rounding of both operands: relative error ~2^-10 per
            // product, accumulation exact-ish in f32.
            let scale: f64 = csr.row_nnz(r) as f64 * 3.0 * 2.4;
            let tol = scale * 2.0f64.powi(-10) + 1e-3;
            assert!((*a as f64 - o).abs() <= tol, "row {r}: {a} vs oracle {o}");
        }
    }

    #[test]
    fn one_mma_per_block_pair_iteration() {
        // Two block rows with 3 and 5 blocks: 5 iterations, 5 MMAs.
        let mut coo = spaden_sparse::coo::Coo::new(16, 64);
        for (bc, r) in [(0u32, 0u32), (2, 0), (5, 0), (1, 8), (3, 8), (4, 8), (6, 8), (7, 8)] {
            coo.push(r, bc * 8, 1.0);
        }
        let csr = coo.to_csr();
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let run = eng.run(&gpu, &vec![1.0f32; 64]);
        assert_eq!(run.counters.mma_m16n16k16, 5);
        assert_eq!(run.counters.warps, 1);
    }

    #[test]
    fn y_store_is_coalesced() {
        // A 16-row matrix: a single warp, a single 64-byte store (2 sectors).
        let csr = gen::random_uniform(16, 64, 200, 211);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let run = eng.run(&gpu, &vec![1.0f32; 64]);
        assert_eq!(run.counters.store_insts, 1);
        assert_eq!(run.counters.sectors_written, 2);
    }

    #[test]
    fn prep_stats_are_populated() {
        let csr = gen::random_uniform(128, 128, 1500, 213);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let p = eng.prep();
        assert!(p.seconds >= 0.0);
        assert_eq!(p.device_bytes, eng.format().bytes() as u64);
        assert_eq!(eng.nnz(), csr.nnz());
        assert_eq!(eng.nrows(), 128);
        assert_eq!(eng.name(), "Spaden");
    }

    #[test]
    fn single_packing_matches_reference_and_doubles_mmas() {
        let csr = gen::generate_blocked(
            256,
            180,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            221,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 29) as f32) * 0.125 - 1.0).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let paired = SpadenEngine::prepare(&gpu, &csr);
        let single = SpadenEngine::prepare_with(
            &gpu,
            &csr,
            SpadenConfig { packing: Packing::Single, ..Default::default() },
        );
        let rp = paired.run(&gpu, &x);
        let rs = single.run(&gpu, &x);
        for (r, (a, b)) in rp.y.iter().zip(&rs.y).enumerate() {
            assert!((a - b).abs() <= 1e-3_f32.max(b.abs() * 1e-3), "row {r}: {a} vs {b}");
        }
        // One block per MMA instead of two: ~2x the MMA count (exactly
        // bnnz vs sum of per-pair max lengths).
        assert_eq!(rs.counters.mma_m16n16k16, paired.format().bnnz() as u64);
        assert!(rs.counters.mma_m16n16k16 > (rp.counters.mma_m16n16k16 * 3) / 2);
    }

    #[test]
    fn smem_staging_adds_traffic_and_time() {
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            223,
        );
        let x = vec![1.0f32; 512];
        let gpu = Gpu::new(GpuConfig::l40());
        let direct = SpadenEngine::prepare(&gpu, &csr).run(&gpu, &x);
        let staged = SpadenEngine::prepare_with(
            &gpu,
            &csr,
            SpadenConfig { fragment_io: FragmentIo::SharedMemoryStaged, ..Default::default() },
        )
        .run(&gpu, &x);
        assert_eq!(direct.counters.smem_bytes, 0);
        assert!(staged.counters.smem_bytes > 0);
        assert!(staged.counters.cuda_ops > direct.counters.cuda_ops);
        assert_eq!(staged.y, direct.y, "staging must not change results");
    }

    #[test]
    fn try_prepare_rejects_corrupt_csr_with_typed_error() {
        // Satellite: Csr::validate is wired into the engine's own prepare
        // path, so a corrupt matrix is a typed Validation error before
        // the kernel (or even the format conversion) sees it.
        let mut csr = gen::random_uniform(64, 64, 600, 241);
        csr.col_idx[..2].reverse(); // unsorted columns within a row
        let gpu = Gpu::new(GpuConfig::l40());
        match SpadenEngine::try_prepare(&gpu, &csr) {
            Err(EngineError::Validation(_)) => {}
            other => panic!("expected Validation, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn try_from_parts_runs_a_sliced_shard() {
        let csr = gen::random_uniform(256, 128, 4000, 243);
        let gpu = Gpu::new(GpuConfig::l40());
        let full = SpadenEngine::prepare(&gpu, &csr);
        let x = make_sliced_x(128);
        let want = full.run(&gpu, &x);
        let (lo, hi) = (4usize, 20usize); // even boundaries: pairing preserved
        let shard = SpadenEngine::try_from_parts(
            &gpu,
            full.format().slice_block_rows(lo, hi),
            full.abft().slice_block_rows(lo, hi),
            SpadenConfig::default(),
        )
        .expect("sliced parts are valid");
        let run = shard.try_run_checked(&gpu, &x).expect("clean shard verifies");
        assert_eq!(
            run.y,
            want.y[lo * BLOCK_DIM..hi * BLOCK_DIM],
            "even-aligned shard output must be bit-identical to the full kernel's rows"
        );
    }

    #[test]
    fn try_from_parts_rejects_mismatched_checksums() {
        let csr = gen::random_uniform(128, 96, 1500, 245);
        let gpu = Gpu::new(GpuConfig::l40());
        let full = SpadenEngine::prepare(&gpu, &csr);
        match SpadenEngine::try_from_parts(
            &gpu,
            full.format().slice_block_rows(0, 8),
            full.abft().slice_block_rows(0, 6),
            SpadenConfig::default(),
        ) {
            Err(EngineError::Validation(msg)) => assert!(msg.contains("block-rows")),
            other => panic!("expected Validation, got {:?}", other.map(|_| ())),
        }
    }

    fn make_sliced_x(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 + 11) % 64) as f32 / 32.0 - 1.0).collect()
    }

    #[test]
    fn try_run_rejects_wrong_x_length() {
        let csr = gen::random_uniform(64, 96, 500, 231);
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        match eng.try_run(&gpu, &vec![1.0f32; 95]) {
            Err(EngineError::ShapeMismatch { expected: 96, got: 95 }) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn checked_run_is_bit_identical_without_faults() {
        let csr = gen::generate_blocked(
            256,
            160,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            233,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 19) as f32) * 0.25 - 2.0).collect();
        let gpu = Gpu::new(GpuConfig::l40());
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let plain = eng.run(&gpu, &x);
        let checked = eng.try_run_checked(&gpu, &x).expect("clean gpu must verify");
        assert_eq!(plain.y, checked.y, "verification must not perturb a clean run");
        assert_eq!(checked.counters.faults_observed, 0);
        assert_eq!(checked.counters.faults_injected, 0);
    }

    #[test]
    fn checked_run_corrects_fragment_faults() {
        use spaden_gpusim::FaultConfig;
        let csr = gen::generate_blocked(
            512,
            300,
            Placement::Scattered,
            &FillDist::Uniform { lo: 8, hi: 40 },
            235,
        );
        let x: Vec<f32> = (0..512).map(|i| ((i * 37 + 11) % 64) as f32 / 32.0 - 1.0).collect();
        let mut cfg = GpuConfig::l40();
        // Most of the 16x16 accumulator tile is never extracted (the kernel
        // reads one column), so a high per-MMA rate is needed before a flip
        // lands on an observable entry.
        cfg.faults =
            FaultConfig { seed: 99, fragment_corrupt_rate: 0.5, ..FaultConfig::disabled() };
        let gpu = Gpu::new(cfg);
        let eng = SpadenEngine::prepare(&gpu, &csr);
        let run = eng.try_run_checked(&gpu, &x).expect("correction must converge");
        assert!(run.counters.faults_injected > 0, "rate 0.02 over ~hundreds of MMAs");
        assert!(run.counters.faults_observed > 0, "high-bit fragment flips are observable");
        let want = eng.format().spmv_reference(&x).unwrap();
        for (r, (a, w)) in run.y.iter().zip(&want).enumerate() {
            let tol = 1e-3_f32.max(w.abs() * 1e-3);
            assert!((a - w).abs() <= tol, "row {r}: corrected {a} vs reference {w}");
        }
    }

    #[test]
    fn checked_run_exhausts_retries_under_saturating_faults() {
        use spaden_gpusim::FaultConfig;
        // Flip every sector of every value load: the scalar recompute path
        // is corrupted too, so correction can never converge.
        let csr = gen::random_uniform(128, 128, 2000, 237);
        let x: Vec<f32> = (0..128).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig { seed: 7, mem_bit_flip_rate: 1.0, ..FaultConfig::disabled() };
        let gpu = Gpu::new(cfg);
        let eng = SpadenEngine::prepare(&gpu, &csr);
        match eng.try_run_checked(&gpu, &x) {
            Err(EngineError::CorrectionExhausted { block_rows, retries }) => {
                assert!(block_rows > 0);
                assert_eq!(retries, ABFT_MAX_RETRIES);
            }
            other => panic!("expected CorrectionExhausted, got {other:?}"),
        }
    }

    #[test]
    fn index_headroom_guard_rejects_oversized_formats() {
        assert!(check_index_headroom(1000, 100).is_ok());
        match check_index_headroom(u32::MAX as usize, 100) {
            Err(EngineError::Validation(msg)) => assert!(msg.contains("headroom"), "{msg}"),
            other => panic!("expected Validation, got {other:?}"),
        }
        assert!(check_index_headroom(100, u32::MAX as usize).is_err());
    }

    #[test]
    fn checked_run_surfaces_numerical_hazard_under_san() {
        use spaden_gpusim::SanConfig;
        let csr = gen::random_uniform(64, 64, 500, 251);
        let mut cfg = GpuConfig::l40();
        cfg.san = SanConfig::on();
        let gpu = Gpu::new(cfg);
        let eng = SpadenEngine::prepare(&gpu, &csr);
        // A well-scaled x verifies cleanly even with the sanitizer on.
        let ok = eng.try_run_checked(&gpu, &vec![1.0f32; 64]).expect("clean input verifies");
        assert!(ok.y.iter().all(|v| v.is_finite()));
        // x past the f16 range: the vector-fragment writes overflow to
        // Inf, and the checked run must refuse to return the poisoned y
        // with a typed diagnosis instead of burning ABFT retries.
        match eng.try_run_checked(&gpu, &vec![1e6f32; 64]) {
            Err(EngineError::NumericalHazard { overflow, .. }) => {
                assert!(overflow > 0, "the overflow count attributes the hazard")
            }
            other => panic!("expected NumericalHazard, got {:?}", other.map(|_| ())),
        }
        // Without the sanitizer the same input can only surface as generic
        // correction exhaustion after the full retry ladder.
        let gpu_off = Gpu::new(GpuConfig::l40());
        let eng_off = SpadenEngine::prepare(&gpu_off, &csr);
        match eng_off.try_run_checked(&gpu_off, &vec![1e6f32; 64]) {
            Err(EngineError::CorrectionExhausted { .. }) => {}
            other => panic!("expected CorrectionExhausted, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn checked_run_surfaces_prepare_time_underflow() {
        use spaden_gpusim::SanConfig;
        // Values below the f16 subnormal floor are rounded to zero when the
        // matrix is packed into bitBSR at prepare time; no run-time scan can
        // see them. The checked run must still refuse to serve the format.
        let mut csr = gen::random_uniform(64, 64, 500, 257);
        for v in &mut csr.values {
            *v = 1e-9;
        }
        let mut cfg = GpuConfig::l40();
        cfg.san = SanConfig::on();
        let gpu = Gpu::new(cfg);
        let eng = SpadenEngine::prepare(&gpu, &csr);
        match eng.try_run_checked(&gpu, &vec![1.0f32; 64]) {
            Err(EngineError::NumericalHazard { underflow, .. }) => {
                assert!(underflow > 0, "the underflow count attributes the loss")
            }
            other => panic!("expected NumericalHazard, got {:?}", other.map(|_| ())),
        }
        // With the sanitizer off the lossy format runs (and happens to
        // verify: y is exactly zero on both the f16 and f64 paths), which
        // is precisely the silent-poisoning mode SimSan exists to catch.
        let gpu_off = Gpu::new(GpuConfig::l40());
        let eng_off = SpadenEngine::prepare(&gpu_off, &csr);
        assert_eq!(eng_off.prep_hazards, (0, 0, 0), "hazard scan is gated on san");
        let r = eng_off.try_run_checked(&gpu_off, &vec![1.0f32; 64]).expect("san-off run");
        assert!(r.y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn san_on_clean_run_is_bit_identical_to_san_off() {
        use spaden_gpusim::SanConfig;
        let csr = gen::generate_blocked(
            256,
            160,
            Placement::Banded { bandwidth: 6 },
            &FillDist::Uniform { lo: 1, hi: 64 },
            253,
        );
        let x: Vec<f32> = (0..256).map(|i| ((i % 19) as f32) * 0.25 - 2.0).collect();
        let run = |san: bool| {
            let mut cfg = GpuConfig::l40();
            if san {
                cfg.san = SanConfig::on();
            }
            let gpu = Gpu::new(cfg);
            let eng = SpadenEngine::prepare(&gpu, &csr);
            let r = eng.run(&gpu, &x);
            assert!(gpu.take_san_reports().is_empty());
            (r.y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), r.counters)
        };
        let (y_off, mut c_off) = run(false);
        let (y_on, c_on) = run(true);
        assert_eq!(y_off, y_on, "sanitizer must not perturb results");
        c_off.san_reports = c_on.san_reports; // the only permitted delta (both zero here)
        assert_eq!(c_off, c_on, "sanitizer must not perturb counters");
    }

    #[test]
    fn dense_vs_sparse_blocks_traffic_scales_with_nnz() {
        // Same block count, different fills: the sparse-block matrix must
        // move far fewer value bytes (the core bitBSR claim).
        let gpu = Gpu::new(GpuConfig::l40());
        let dense = gen::generate_blocked(512, 320, Placement::Scattered, &FillDist::Dense, 215);
        let sparse = gen::generate_blocked(
            512,
            320,
            Placement::Scattered,
            &FillDist::Uniform { lo: 4, hi: 4 },
            215,
        );
        let x = vec![1.0f32; 512];
        let rd = SpadenEngine::prepare(&gpu, &dense).run(&gpu, &x);
        let rs = SpadenEngine::prepare(&gpu, &sparse).run(&gpu, &x);
        assert!(
            rd.counters.dram_read_bytes > 2 * rs.counters.dram_read_bytes,
            "dense {} vs sparse {}",
            rd.counters.dram_read_bytes,
            rs.counters.dram_read_bytes
        );
    }
}
