//! Epoch-versioned evolving matrices: the verified update lifecycle.
//!
//! An [`EvolvingMatrix`] owns three mutually-checking representations of
//! one logical matrix — the CSR **truth** (f32, update oracle), the
//! [`DeltaBitBsr`] the kernels serve from, and the ABFT checksums
//! (logical and base-only) repaired **incrementally** on touched
//! block-rows only. Every update batch moves the matrix one *epoch*
//! forward through a build-next-state-then-commit transaction:
//!
//! 1. apply the batch to the CSR truth and (separately) to the delta
//!    format, classifying it value-only vs structural;
//! 2. repair both checksum sets on the touched block-rows;
//! 3. cross-check the touched block-rows' stored f16 bits against the
//!    CSR truth — this is what catches a corrupted splice (an injected
//!    [`UpdateFault`], a host bit flip), because the checksum repair
//!    *reads* the corrupted value and would otherwise agree with it;
//! 4. if the side buffer crossed the compaction threshold, compact and
//!    verify the result **bit-identical** to [`BitBsr::from_csr`] of the
//!    truth;
//! 5. optionally audit: full checksum recomputation compared `==`
//!    (f64-exact) against the incrementally-repaired sums;
//! 6. only then commit and bump the epoch. Any failure returns a typed
//!    [`UpdateError`] and leaves the previous epoch untouched — rollback
//!    is the *absence of a commit*, so a bad epoch can never be
//!    published, observed, or partially applied.

use crate::abft::AbftChecksums;
use crate::bitbsr::BitBsr;
use crate::delta::{ApplyStats, DeltaBitBsr, UpdateFault};
use spaden_sparse::delta::{apply_to_csr, classify, DeltaBatch, DeltaClass, UpdateError};
use spaden_sparse::Csr;

/// Tuning knobs of the update lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolveConfig {
    /// Hard capacity of the new-block side buffer; a batch that would
    /// exceed it is rejected whole.
    pub side_capacity: usize,
    /// Side-buffer occupancy that triggers compaction after a commit-
    /// ready batch (threshold ≤ capacity; 1 = compact on every new
    /// block).
    pub compact_threshold: usize,
    /// Audit mode: after every update, recompute both checksum sets from
    /// scratch and require them `==` the incrementally repaired ones.
    pub audit: bool,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig { side_capacity: 4096, compact_threshold: 256, audit: false }
    }
}

/// Lifetime counters of one [`EvolvingMatrix`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvolveStats {
    /// Committed update batches (== current epoch).
    pub updates: u64,
    /// Batches rejected by post-update verification or compaction
    /// mismatch — the epoch rolled back.
    pub rollbacks: u64,
    /// Compactions performed (each one verified bit-identical).
    pub compactions: u64,
    /// Committed batches that changed the sparsity structure.
    pub structural_batches: u64,
    /// Committed batches that only overwrote existing values.
    pub value_only_batches: u64,
    /// Full-recompute audits that ran (and passed).
    pub audits: u64,
}

/// What one committed update did — returned by [`EvolvingMatrix::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateReport {
    /// Epoch the commit produced (first commit ⇒ 1).
    pub epoch: u64,
    /// Value-only or structural, per the pre-update truth.
    pub class: DeltaClass,
    /// Where the deltas landed.
    pub apply: ApplyStats,
    /// Whether this commit ended in a (verified) compaction.
    pub compacted: bool,
    /// Block-rows whose checksums were incrementally repaired.
    pub touched_block_rows: usize,
}

/// Typed failure of [`EvolvingMatrix::from_parts`] — the verified
/// restore path the durability layer recovers through. Every variant
/// means the parts were rejected whole; no partially restored matrix
/// ever exists.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The parts are dimensionally or structurally inconsistent (a
    /// decoded-but-wrong snapshot).
    Structural(String),
    /// The stored f16 bits disagree with the CSR truth in `block_rows`
    /// block-rows — the snapshot carries a corrupted value.
    Verification {
        /// The epoch the parts claim.
        epoch: u64,
        /// Disagreeing block-rows.
        block_rows: usize,
    },
    /// A restored checksum set is not `==` (f64-exact) to a from-scratch
    /// build of the restored format.
    ChecksumMismatch {
        /// The epoch the parts claim.
        epoch: u64,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Structural(s) => write!(f, "restore rejected: {s}"),
            RestoreError::Verification { epoch, block_rows } => write!(
                f,
                "restore of epoch {epoch} rejected: {block_rows} block-row(s) disagree with the truth"
            ),
            RestoreError::ChecksumMismatch { epoch } => {
                write!(f, "restore of epoch {epoch} rejected: checksums not f64-exact")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// An epoch-versioned matrix that accepts verified streaming updates.
#[derive(Debug, Clone)]
pub struct EvolvingMatrix {
    csr: Csr,
    delta: DeltaBitBsr,
    /// Checksums of the logical matrix (base + side) — verify served
    /// results that include the side-buffer tail.
    logical: AbftChecksums,
    /// Checksums of the base format only — what a tensor-core engine
    /// built from the base via `try_from_parts` verifies against.
    base_sums: AbftChecksums,
    epoch: u64,
    config: EvolveConfig,
    stats: EvolveStats,
}

impl EvolvingMatrix {
    /// Wraps a validated CSR matrix at epoch 0.
    pub fn new(csr: Csr, config: EvolveConfig) -> Self {
        let config = EvolveConfig {
            side_capacity: config.side_capacity.max(1),
            compact_threshold: config.compact_threshold.clamp(1, config.side_capacity.max(1)),
            audit: config.audit,
        };
        let delta = DeltaBitBsr::new(BitBsr::from_csr(&csr), config.side_capacity);
        let logical = AbftChecksums::build_logical(&delta);
        let base_sums = logical.clone(); // empty side ⇒ logical == base
        EvolvingMatrix { csr, delta, logical, base_sums, epoch: 0, config, stats: EvolveStats::default() }
    }

    /// Reassembles an evolving matrix from restored parts, trusting
    /// nothing: the CSR truth is re-validated, every block-row's stored
    /// f16 bits are cross-checked against it (the same check a commit
    /// runs on touched block-rows, here over the whole matrix), and both
    /// checksum sets must be `==` (f64-exact) to from-scratch builds.
    /// This is the durability layer's recovery gate — a corrupted
    /// snapshot is rejected with a typed [`RestoreError`] instead of
    /// ever serving.
    pub fn from_parts(
        csr: Csr,
        delta: DeltaBitBsr,
        logical: AbftChecksums,
        base_sums: AbftChecksums,
        epoch: u64,
        config: EvolveConfig,
        stats: EvolveStats,
    ) -> Result<Self, RestoreError> {
        csr.validate()
            .map_err(|e| RestoreError::Structural(format!("restored truth invalid: {e}")))?;
        let base = delta.base();
        if csr.nrows != base.nrows || csr.ncols != base.ncols {
            return Err(RestoreError::Structural(format!(
                "truth is {}x{} but format is {}x{}",
                csr.nrows, csr.ncols, base.nrows, base.ncols
            )));
        }
        let config = EvolveConfig {
            side_capacity: config.side_capacity.max(1),
            compact_threshold: config.compact_threshold.clamp(1, config.side_capacity.max(1)),
            audit: config.audit,
        };
        if delta.side_capacity() != config.side_capacity {
            return Err(RestoreError::Structural(format!(
                "format capacity {} != configured capacity {}",
                delta.side_capacity(),
                config.side_capacity
            )));
        }
        if stats.updates != epoch {
            return Err(RestoreError::Structural(format!(
                "stats claim {} commits but the epoch is {epoch}",
                stats.updates
            )));
        }
        let all: Vec<usize> = (0..base.block_rows).collect();
        let bad = delta.verify_touched(&csr, &all);
        if bad > 0 {
            return Err(RestoreError::Verification { epoch, block_rows: bad });
        }
        if logical != AbftChecksums::build_logical(&delta)
            || base_sums != AbftChecksums::build(delta.base())
        {
            return Err(RestoreError::ChecksumMismatch { epoch });
        }
        Ok(EvolvingMatrix { csr, delta, logical, base_sums, epoch, config, stats })
    }

    /// Applies one batch as a build-then-commit transaction. On any
    /// error the matrix is untouched — same epoch, same truth, same
    /// format, same checksums (rollback by non-commit).
    pub fn apply(
        &mut self,
        batch: &DeltaBatch,
        fault: Option<UpdateFault>,
    ) -> Result<UpdateReport, UpdateError> {
        let class = classify(&self.csr, batch);
        let next_csr = apply_to_csr(&self.csr, batch)?;
        let mut next_delta = self.delta.clone();
        let apply = next_delta.apply(batch, fault)?;
        let touched = batch.touched_block_rows();
        let mut next_logical = self.logical.clone();
        next_logical.repair_block_rows(&next_delta, &touched);
        let mut next_base = self.base_sums.clone();
        next_base.repair_block_rows_base(next_delta.base(), &touched);
        // Post-update verification: stored f16 bits vs the CSR truth on
        // every touched block-row. The checksum repair alone cannot catch
        // a corrupted splice — it faithfully checksums the corrupt value.
        let bad = next_delta.verify_touched(&next_csr, &touched);
        if bad > 0 {
            self.stats.rollbacks += 1;
            return Err(UpdateError::VerificationFailed { epoch: self.epoch, block_rows: bad });
        }
        let mut compacted = false;
        if next_delta.side_len() >= self.config.compact_threshold {
            next_delta.compact();
            if *next_delta.base() != BitBsr::from_csr(&next_csr) {
                self.stats.rollbacks += 1;
                return Err(UpdateError::CompactionMismatch { epoch: self.epoch });
            }
            // Empty side ⇒ the logical checksums are the base checksums,
            // and both repaired sets are (provably, see audit) exactly the
            // from-scratch builds.
            next_base = next_logical.clone();
            compacted = true;
        }
        if self.config.audit {
            let full_logical = AbftChecksums::build_logical(&next_delta);
            let full_base = AbftChecksums::build(next_delta.base());
            if next_logical != full_logical || next_base != full_base {
                self.stats.rollbacks += 1;
                return Err(UpdateError::VerificationFailed {
                    epoch: self.epoch,
                    block_rows: touched.len(),
                });
            }
            self.stats.audits += 1;
        }
        // Commit.
        self.csr = next_csr;
        self.delta = next_delta;
        self.logical = next_logical;
        self.base_sums = next_base;
        self.epoch += 1;
        self.stats.updates += 1;
        if compacted {
            self.stats.compactions += 1;
        }
        match class {
            DeltaClass::ValueOnly => self.stats.value_only_batches += 1,
            DeltaClass::Structural => self.stats.structural_batches += 1,
        }
        Ok(UpdateReport {
            epoch: self.epoch,
            class,
            apply,
            compacted,
            touched_block_rows: touched.len(),
        })
    }

    /// The CSR truth at the current epoch.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The delta format at the current epoch.
    pub fn delta(&self) -> &DeltaBitBsr {
        &self.delta
    }

    /// The base bitBSR the kernels run on.
    pub fn base(&self) -> &BitBsr {
        self.delta.base()
    }

    /// Checksums of the logical matrix (base + side tail).
    pub fn logical_sums(&self) -> &AbftChecksums {
        &self.logical
    }

    /// Checksums of the base format only.
    pub fn base_sums(&self) -> &AbftChecksums {
        &self.base_sums
    }

    /// Current epoch (0 = as registered, +1 per committed batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EvolveStats {
        self.stats
    }

    /// The lifecycle configuration (thresholds clamped at construction).
    pub fn config(&self) -> EvolveConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_sparse::delta::Delta;
    use spaden_sparse::{gen, Pcg64};

    fn random_batch(csr: &Csr, rng: &mut Pcg64, k: usize) -> DeltaBatch {
        let mut deltas = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        while deltas.len() < k {
            let row = rng.below_usize(csr.nrows) as u32;
            let col = rng.below_usize(csr.ncols) as u32;
            if seen.insert((row, col)) {
                deltas.push(Delta { row, col, value: rng.range_f32(-3.0, 3.0) });
            }
        }
        DeltaBatch::new(deltas, csr.nrows, csr.ncols).unwrap()
    }

    #[test]
    fn audited_update_stream_commits_and_compacts() {
        // Sparse enough that random deltas regularly open new blocks.
        let csr = gen::random_uniform(80, 80, 150, 42);
        let mut m = EvolvingMatrix::new(
            csr,
            EvolveConfig { side_capacity: 64, compact_threshold: 4, audit: true },
        );
        let mut rng = Pcg64::new(3, 14);
        for i in 0..10 {
            let b = random_batch(m.csr(), &mut rng, 11);
            let report = m.apply(&b, None).expect("clean update must commit");
            assert_eq!(report.epoch, i + 1);
        }
        let st = m.stats();
        assert_eq!(st.updates, 10);
        assert_eq!(st.rollbacks, 0);
        assert_eq!(st.audits, 10);
        assert!(st.compactions >= 1, "threshold 4 must trigger at least one compaction");
        assert_eq!(m.epoch(), 10);
        // Final state is globally consistent.
        assert_eq!(m.delta().verify_touched(m.csr(), &(0..m.base().block_rows).collect::<Vec<_>>()), 0);
    }

    #[test]
    fn injected_fault_rolls_the_epoch_back() {
        let csr = gen::random_uniform(64, 64, 500, 77);
        let mut m = EvolvingMatrix::new(csr, EvolveConfig { audit: true, ..Default::default() });
        let mut rng = Pcg64::new(8, 1);
        let good = random_batch(m.csr(), &mut rng, 7);
        m.apply(&good, None).unwrap();
        let before = (m.epoch(), m.csr().clone(), m.delta().clone());
        let bad = random_batch(m.csr(), &mut rng, 7);
        let err = m
            .apply(&bad, Some(UpdateFault { delta_index: 2, bit: 11 }))
            .expect_err("corrupted splice must be rejected");
        assert!(matches!(err, UpdateError::VerificationFailed { epoch: 1, .. }), "{err:?}");
        assert_eq!(m.epoch(), before.0, "epoch must not advance");
        assert_eq!(*m.csr(), before.1, "truth must be untouched");
        assert_eq!(*m.delta(), before.2, "format must be untouched");
        assert_eq!(m.stats().rollbacks, 1);
        // The same batch without the fault commits fine afterwards.
        m.apply(&bad, None).unwrap();
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn value_only_and_structural_batches_are_classified() {
        let csr = gen::random_uniform(48, 48, 300, 5);
        let mut m = EvolvingMatrix::new(csr, EvolveConfig { audit: true, ..Default::default() });
        let (cols, _) = m.csr().row(0);
        let c0 = cols[0];
        let r = m
            .apply(&DeltaBatch::new(vec![Delta { row: 0, col: c0, value: 9.0 }], 48, 48).unwrap(), None)
            .unwrap();
        assert_eq!(r.class, DeltaClass::ValueOnly);
        // An entry at a position CSR row 0 does not have.
        let missing = (0..48u32).find(|c| !m.csr().row(0).0.contains(c)).unwrap();
        let r = m
            .apply(
                &DeltaBatch::new(vec![Delta { row: 0, col: missing, value: 1.0 }], 48, 48).unwrap(),
                None,
            )
            .unwrap();
        assert_eq!(r.class, DeltaClass::Structural);
        let st = m.stats();
        assert_eq!((st.value_only_batches, st.structural_batches), (1, 1));
    }

    #[test]
    fn from_parts_roundtrips_a_live_matrix_exactly() {
        let csr = gen::random_uniform(72, 72, 400, 33);
        let mut m = EvolvingMatrix::new(
            csr,
            EvolveConfig { side_capacity: 128, compact_threshold: 16, audit: false },
        );
        let mut rng = Pcg64::new(4, 4);
        for _ in 0..5 {
            let b = random_batch(m.csr(), &mut rng, 9);
            m.apply(&b, None).unwrap();
        }
        let restored = EvolvingMatrix::from_parts(
            m.csr().clone(),
            m.delta().clone(),
            m.logical_sums().clone(),
            m.base_sums().clone(),
            m.epoch(),
            m.config(),
            m.stats(),
        )
        .expect("a live matrix's own parts restore");
        assert_eq!(*restored.csr(), *m.csr());
        assert_eq!(*restored.delta(), *m.delta());
        assert_eq!(*restored.logical_sums(), *m.logical_sums());
        assert_eq!(*restored.base_sums(), *m.base_sums());
        assert_eq!(restored.epoch(), m.epoch());
        assert_eq!(restored.stats(), m.stats());
        // The restored matrix keeps evolving identically to the original.
        let b = random_batch(m.csr(), &mut Pcg64::new(6, 6), 7);
        let mut r2 = restored;
        let (ra, rb) = (m.apply(&b, None).unwrap(), r2.apply(&b, None).unwrap());
        assert_eq!(ra, rb);
        assert_eq!(*m.delta(), *r2.delta());
    }

    #[test]
    fn from_parts_rejects_corrupted_parts_typed() {
        let csr = gen::random_uniform(64, 64, 300, 55);
        let m = EvolvingMatrix::new(csr, EvolveConfig::default());
        // A flipped stored value bit: verification failure.
        let mut delta = m.delta().clone();
        let mut base = delta.base().clone();
        base.values[0] = spaden_gpusim::half::F16(base.values[0].0 ^ 0x0200);
        delta = DeltaBitBsr::from_parts(base, delta.side().to_vec(), delta.side_capacity())
            .expect("structure still valid");
        let err = EvolvingMatrix::from_parts(
            m.csr().clone(),
            delta,
            m.logical_sums().clone(),
            m.base_sums().clone(),
            m.epoch(),
            m.config(),
            m.stats(),
        )
        .unwrap_err();
        assert!(matches!(err, crate::evolve::RestoreError::Verification { .. }), "{err:?}");
        // Checksums from a different matrix: checksum mismatch. Perturb a
        // sum via raw-parts rebuild.
        let parts = m.logical_sums().raw_parts();
        let mut sums = parts.sums.to_vec();
        if let Some(s) = sums.first_mut() {
            *s += 1.0;
        }
        let wrong = AbftChecksums::from_raw_parts(
            parts.nrows,
            parts.ncols,
            parts.ptr.to_vec(),
            parts.cols.to_vec(),
            sums,
            parts.wsums.to_vec(),
            parts.abs.to_vec(),
            parts.nnz_br.to_vec(),
        )
        .expect("structurally valid");
        let err = EvolvingMatrix::from_parts(
            m.csr().clone(),
            m.delta().clone(),
            wrong,
            m.base_sums().clone(),
            m.epoch(),
            m.config(),
            m.stats(),
        )
        .unwrap_err();
        assert!(matches!(err, crate::evolve::RestoreError::ChecksumMismatch { .. }), "{err:?}");
        // Stats disagreeing with the epoch: structural rejection.
        let err = EvolvingMatrix::from_parts(
            m.csr().clone(),
            m.delta().clone(),
            m.logical_sums().clone(),
            m.base_sums().clone(),
            3,
            m.config(),
            m.stats(),
        )
        .unwrap_err();
        assert!(matches!(err, crate::evolve::RestoreError::Structural(_)), "{err:?}");
    }

    #[test]
    fn overflow_rejection_leaves_epoch_intact() {
        let csr = gen::random_uniform(64, 64, 200, 9);
        let mut m = EvolvingMatrix::new(
            csr,
            EvolveConfig { side_capacity: 1, compact_threshold: 1, audit: true },
        );
        // Capacity 1 with threshold 1: single new-block inserts commit (and
        // immediately compact); a batch needing two side slots is rejected.
        let mut deltas = Vec::new();
        'outer: for row in 0..64u32 {
            for col in 0..64u32 {
                let (cols, _) = m.csr().row(row as usize);
                let br_lo = row / 8 * 8;
                let block_present = (0..8).any(|dr| {
                    let (c2, _) = m.csr().row((br_lo + dr) as usize);
                    c2.iter().any(|c| c / 8 == col / 8)
                });
                let _ = cols;
                if !block_present {
                    deltas.push(Delta { row, col: col / 8 * 8, value: 1.0 });
                    deltas.push(Delta { row, col: col / 8 * 8 + 1, value: 2.0 });
                    break 'outer;
                }
            }
        }
        assert_eq!(deltas.len(), 2, "fixture must find an absent block");
        let b = DeltaBatch::new(deltas, 64, 64).unwrap();
        let err = m.apply(&b, None).unwrap_err();
        assert!(matches!(err, UpdateError::SideBufferOverflow { .. }), "{err:?}");
        assert_eq!(m.epoch(), 0);
    }
}
