//! # spaden
//!
//! Reproduction of **Spaden** — *Bitmap-Based Sparse Matrix-Vector
//! Multiplication with Tensor Cores* (Chen & Yu, ICPP '24) — on the
//! [`gpusim`] simulated GPU substrate.
//!
//! Spaden has two components (paper §4):
//!
//! 1. **bitBSR** ([`BitBsr`]): blocked CSR where each non-empty 8×8 block
//!    is compressed to a 64-bit occupancy bitmap plus its packed nonzero
//!    values in f16 — rectangular like BSR, compact like CSR.
//! 2. A **pairing SpMV kernel** ([`SpadenEngine`]): each warp decodes two
//!    blocks straight into the diagonal portions of a tensor-core fragment
//!    through the reverse-engineered register mapping (registers
//!    `x[0,1]` / `x[6,7]`), multiplies against a column-broadcast vector
//!    fragment, and extracts 16 output rows per MMA.
//!
//! Ablation variants from §5.3 are included: [`SpadenNoTcEngine`]
//! ("Spaden w/o TC": same bitBSR decode, CUDA-core FMAs) and
//! [`CsrWarp16Engine`] (the uncoalesced 16-rows-per-warp CSR strawman).
//!
//! ```
//! use spaden::{SpadenEngine, SpmvEngine};
//! use spaden::gpusim::{Gpu, GpuConfig};
//!
//! let csr = spaden::sparse::gen::random_uniform(256, 256, 4000, 1);
//! let gpu = Gpu::new(GpuConfig::l40());
//! let engine = SpadenEngine::prepare(&gpu, &csr);
//! let x = vec![1.0f32; 256];
//! let run = engine.run(&gpu, &x);
//! assert_eq!(run.y.len(), 256);
//! ```

// Kernels are written in warp-lockstep style: explicit `for lane in
// 0..32` loops indexing parallel per-lane arrays, mirroring the CUDA
// code they model. The range-loop lint fights that idiom.
#![allow(clippy::needless_range_loop)]

pub mod abft;
pub mod bitbsr;
pub mod bitcoo;
pub mod csr_warp16;
pub mod decode;
pub mod delta;
pub mod engine;
pub mod evolve;
pub mod kernel_cuda;
pub mod kernel_tc;
pub mod sddmm;
pub mod spgemm;
pub mod spmm;

pub use abft::{AbftChecksums, AbftParts};
pub use bitbsr::BitBsr;
pub use bitcoo::{BitCoo, BitCooEngine};
pub use csr_warp16::CsrWarp16Engine;
pub use delta::{ApplyStats, DeltaBitBsr, SideEntry, UpdateFault};
pub use engine::{prepare_validated, EngineError, PrepStats, SpmvEngine, SpmvRun};
pub use evolve::{EvolveConfig, EvolveStats, EvolvingMatrix, RestoreError, UpdateReport};
pub use kernel_cuda::SpadenNoTcEngine;
pub use kernel_tc::{FragmentIo, Packing, SpadenConfig, SpadenEngine, ABFT_MAX_RETRIES};
pub use sddmm::SpadenSddmmEngine;
pub use spgemm::{spgemm_reference, SpadenSpgemmEngine, SpgemmRun};
pub use spmm::{CsrSpmmEngine, SpadenSpmmEngine, SpmmRun};

// Re-export the substrate crates under stable names for downstream users.
pub use spaden_gpusim as gpusim;
pub use spaden_sparse as sparse;
