//! Criterion benches over the simulated SpMV engines — the wall-time
//! counterpart of Figure 6 (each engine's full functional simulation on
//! one representative matrix per structural class).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spaden_bench::{build_engine, make_x, EngineKind, FIG6_ENGINES};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;

fn engines(c: &mut Criterion) {
    // One banded FEM matrix (cant) and one scattered DFT matrix
    // (Si41Ge41H72): the two regimes of Figure 9b.
    for ds_name in ["cant", "Si41Ge41H72"] {
        let ds = by_name(ds_name).expect("dataset").generate(0.02);
        let x = make_x(ds.csr.ncols);
        let mut g = c.benchmark_group(format!("fig6_sim_{ds_name}"));
        g.throughput(Throughput::Elements(ds.csr.nnz() as u64));
        g.sample_size(10);
        for kind in FIG6_ENGINES {
            let gpu = Gpu::new(GpuConfig::l40());
            let engine = build_engine(kind, &gpu, &ds.csr);
            g.bench_function(BenchmarkId::new(kind.name(), ds.csr.nnz()), |b| {
                b.iter(|| engine.run(&gpu, std::hint::black_box(&x)))
            });
        }
        g.finish();
    }

    // The Figure-8 ablation variants on the FEM matrix.
    let ds = by_name("cant").expect("dataset").generate(0.02);
    let x = make_x(ds.csr.ncols);
    let mut g = c.benchmark_group("fig8_sim_variants");
    g.throughput(Throughput::Elements(ds.csr.nnz() as u64));
    g.sample_size(10);
    for kind in [EngineKind::Spaden, EngineKind::SpadenNoTc, EngineKind::CsrWarp16] {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = build_engine(kind, &gpu, &ds.csr);
        g.bench_function(kind.name(), |b| {
            b.iter(|| engine.run(&gpu, std::hint::black_box(&x)))
        });
    }
    g.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
