//! Wall-time benches over the simulated SpMV engines — the counterpart of
//! Figure 6 (each engine's full functional simulation on one
//! representative matrix per structural class).

use spaden_bench::{build_engine, make_x, BenchGroup, EngineKind, FIG6_ENGINES};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;

fn main() {
    // One banded FEM matrix (cant) and one scattered DFT matrix
    // (Si41Ge41H72): the two regimes of Figure 9b.
    for ds_name in ["cant", "Si41Ge41H72"] {
        let ds = by_name(ds_name).expect("dataset").generate(0.02);
        let x = make_x(ds.csr.ncols);
        let mut g = BenchGroup::new(format!("fig6_sim_{ds_name}"));
        g.throughput(ds.csr.nnz() as u64);
        for kind in FIG6_ENGINES {
            let gpu = Gpu::new(GpuConfig::l40());
            let engine = build_engine(kind, &gpu, &ds.csr);
            g.bench(kind.name(), || engine.run(&gpu, std::hint::black_box(&x)));
        }
    }

    // The Figure-8 ablation variants on the FEM matrix.
    let ds = by_name("cant").expect("dataset").generate(0.02);
    let x = make_x(ds.csr.ncols);
    let mut g = BenchGroup::new("fig8_sim_variants");
    g.throughput(ds.csr.nnz() as u64);
    for kind in [EngineKind::Spaden, EngineKind::SpadenNoTc, EngineKind::CsrWarp16] {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = build_engine(kind, &gpu, &ds.csr);
        g.bench(kind.name(), || engine.run(&gpu, std::hint::black_box(&x)));
    }
}
