//! Ablation benches for the design choices DESIGN.md calls out:
//! diagonal two-block packing vs single-block, direct register access vs
//! shared-memory staging, and block-size analysis. Wall time here is the
//! functional simulation; the *modelled* GPU times for the same ablations
//! come from `repro ablations`.

use spaden::bitbsr::analyze_block_size;
use spaden::{FragmentIo, Packing, SpadenConfig, SpadenEngine, SpmvEngine};
use spaden_bench::{make_x, BenchGroup};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;

fn main() {
    let ds = by_name("cant").expect("dataset").generate(0.02);
    let x = make_x(ds.csr.ncols);

    let mut g = BenchGroup::new("ablation_packing");
    g.throughput(ds.csr.nnz() as u64);
    for (label, packing) in [("diagonal_2blocks", Packing::Diagonal), ("single_block", Packing::Single)] {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenEngine::prepare_with(
            &gpu,
            &ds.csr,
            SpadenConfig { packing, ..Default::default() },
        );
        g.bench(label, || engine.run(&gpu, std::hint::black_box(&x)));
    }

    let mut g = BenchGroup::new("ablation_fragment_io");
    g.throughput(ds.csr.nnz() as u64);
    for (label, io) in [
        ("direct_registers", FragmentIo::Direct),
        ("smem_staged", FragmentIo::SharedMemoryStaged),
    ] {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenEngine::prepare_with(
            &gpu,
            &ds.csr,
            SpadenConfig { fragment_io: io, ..Default::default() },
        );
        g.bench(label, || engine.run(&gpu, std::hint::black_box(&x)));
    }

    let mut g = BenchGroup::new("ablation_block_size");
    g.throughput(ds.csr.nnz() as u64);
    for dim in [4usize, 8, 16] {
        g.bench(&format!("analyze_{dim}x{dim}"), || {
            analyze_block_size(std::hint::black_box(&ds.csr), dim)
        });
    }
}
