//! Benches for the host-side format conversions — the real-time
//! counterpart of Figure 10a (preprocessing time). Each target converts
//! the same mid-size matrix; throughput is reported per nonzero.

use spaden::BitBsr;
use spaden_baselines::DaspEngine;
use spaden_bench::BenchGroup;
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;
use spaden_sparse::{bsr::Bsr, ell::Ell, hyb::Hyb};

fn main() {
    let csr = by_name("cant").expect("dataset").generate(0.05).csr;
    let nnz = csr.nnz() as u64;

    let mut g = BenchGroup::new("fig10a_conversion");
    g.throughput(nnz);
    g.bench("bitBSR", || BitBsr::from_csr(std::hint::black_box(&csr)));
    g.bench("BSR", || Bsr::from_csr(std::hint::black_box(&csr)));
    g.bench("ELL", || Ell::from_csr(std::hint::black_box(&csr)));
    g.bench("HYB", || Hyb::from_csr(std::hint::black_box(&csr)));
    {
        let gpu = Gpu::new(GpuConfig::l40());
        g.bench("DASP", || DaspEngine::prepare(&gpu, std::hint::black_box(&csr)));
    }

    let mut g = BenchGroup::new("scan");
    let counts: Vec<u32> = (0..1_000_000u32).map(|i| i % 64).collect();
    g.throughput(counts.len() as u64);
    g.bench("exclusive_serial", || {
        spaden_sparse::scan::exclusive_scan(std::hint::black_box(&counts))
    });
    g.bench("exclusive_parallel", || {
        spaden_sparse::scan::exclusive_scan_par(std::hint::black_box(&counts))
    });
}
