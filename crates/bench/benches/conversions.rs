//! Criterion benches for the host-side format conversions — the real-time
//! counterpart of Figure 10a (preprocessing time). Each target converts
//! the same mid-size matrix; throughput is reported per nonzero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spaden::BitBsr;
use spaden_baselines::DaspEngine;
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;
use spaden_sparse::{bsr::Bsr, ell::Ell, hyb::Hyb};

fn conversions(c: &mut Criterion) {
    let csr = by_name("cant").expect("dataset").generate(0.05).csr;
    let nnz = csr.nnz() as u64;

    let mut g = c.benchmark_group("fig10a_conversion");
    g.throughput(Throughput::Elements(nnz));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("bitBSR", nnz), |b| {
        b.iter(|| BitBsr::from_csr(std::hint::black_box(&csr)))
    });
    g.bench_function(BenchmarkId::new("BSR", nnz), |b| {
        b.iter(|| Bsr::from_csr(std::hint::black_box(&csr)))
    });
    g.bench_function(BenchmarkId::new("ELL", nnz), |b| {
        b.iter(|| Ell::from_csr(std::hint::black_box(&csr)))
    });
    g.bench_function(BenchmarkId::new("HYB", nnz), |b| {
        b.iter(|| Hyb::from_csr(std::hint::black_box(&csr)))
    });
    g.bench_function(BenchmarkId::new("DASP", nnz), |b| {
        let gpu = Gpu::new(GpuConfig::l40());
        b.iter(|| DaspEngine::prepare(&gpu, std::hint::black_box(&csr)))
    });
    g.finish();

    let mut g = c.benchmark_group("scan");
    let counts: Vec<u32> = (0..1_000_000u32).map(|i| i % 64).collect();
    g.throughput(Throughput::Elements(counts.len() as u64));
    g.bench_function("exclusive_serial", |b| {
        b.iter(|| spaden_sparse::scan::exclusive_scan(std::hint::black_box(&counts)))
    });
    g.bench_function("exclusive_parallel", |b| {
        b.iter(|| spaden_sparse::scan::exclusive_scan_par(std::hint::black_box(&counts)))
    });
    g.finish();
}

criterion_group!(benches, conversions);
criterion_main!(benches);
