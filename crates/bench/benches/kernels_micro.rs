//! Microbenchmarks of the simulator substrate: fragment load/store, MMA
//! emulation, bitmap decode, f16 conversion, coalescer and L2 model.
//! These bound how fast the functional simulation itself can go.

use spaden::decode::lane_value_indices;
use spaden_bench::BenchGroup;
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::{coalesce_into, L2Cache};
use spaden_gpusim::mma::mma_sync;

fn main() {
    // Fragment load/store (256 element mappings each).
    let mut m = [0.0f32; 256];
    for (i, v) in m.iter_mut().enumerate() {
        *v = i as f32;
    }
    let g = BenchGroup::new("fragment");
    {
        let mut f = Fragment::new(FragKind::MatrixA);
        g.bench("load_store", move || {
            f.load_matrix(std::hint::black_box(&m));
            f.store_matrix()
        });
    }

    // One emulated m16n16k16 MMA (4096 FMA).
    let mut g = BenchGroup::new("mma");
    g.throughput(4096);
    {
        let mut a = Fragment::new(FragKind::MatrixA);
        let mut bb = Fragment::new(FragKind::MatrixB);
        a.load_matrix(&m);
        bb.load_matrix(&m);
        let cc = Fragment::new(FragKind::Accumulator);
        let mut d = Fragment::new(FragKind::Accumulator);
        g.bench("m16n16k16_emulated", move || {
            mma_sync(&mut d, std::hint::black_box(&a), &bb, &cc)
        });
    }

    // Bitmap decode: all 32 lanes of one block.
    let mut g = BenchGroup::new("decode");
    g.throughput(64);
    g.bench("lane_value_indices_warp", || {
        let bmp = 0xdead_beef_cafe_f00du64;
        let mut acc = 0u32;
        for lid in 0..32 {
            let (v1, v2) = lane_value_indices(std::hint::black_box(bmp), lid);
            acc = acc.wrapping_add(v1.unwrap_or(0)).wrapping_add(v2.unwrap_or(0));
        }
        acc
    });

    // f16 conversion round-trip.
    let mut g = BenchGroup::new("half");
    let vals: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
    g.throughput(vals.len() as u64);
    g.bench("f32_to_f16_to_f32", || {
        vals.iter().map(|&v| F16::from_f32(std::hint::black_box(v)).to_f32()).sum::<f32>()
    });

    // Coalescer on a strided warp access.
    let g = BenchGroup::new("memory_model");
    {
        let mut scratch = Vec::with_capacity(64);
        g.bench("coalesce_32_strided", move || {
            coalesce_into((0..32u64).map(|i| i * 128), std::hint::black_box(&mut scratch));
            scratch.len()
        });
    }
    {
        let mut l2 = L2Cache::new(1 << 20);
        let mut s = 0u64;
        g.bench("l2_access_stream", move || {
            s = s.wrapping_add(1);
            l2.access_sector(std::hint::black_box(s % 100_000))
        });
    }

    // Reference CSR SpMV serial vs thread-parallel.
    let csr = spaden_sparse::gen::random_uniform(20_000, 20_000, 600_000, 5);
    let x: Vec<f32> = (0..20_000).map(|i| (i % 17) as f32).collect();
    let mut g = BenchGroup::new("reference_spmv");
    g.throughput(csr.nnz() as u64);
    g.bench("csr_serial", || csr.spmv(std::hint::black_box(&x)).unwrap());
    g.bench("csr_parallel", || csr.spmv_par(std::hint::black_box(&x)).unwrap());
}
