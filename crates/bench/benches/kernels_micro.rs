//! Microbenchmarks of the simulator substrate: fragment load/store, MMA
//! emulation, bitmap decode, f16 conversion, coalescer and L2 model.
//! These bound how fast the functional simulation itself can go.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spaden::decode::lane_value_indices;
use spaden_gpusim::fragment::{FragKind, Fragment};
use spaden_gpusim::half::F16;
use spaden_gpusim::memory::{coalesce_into, L2Cache};
use spaden_gpusim::mma::mma_sync;

fn micro(c: &mut Criterion) {
    // Fragment load/store (256 element mappings each).
    let mut m = [0.0f32; 256];
    for (i, v) in m.iter_mut().enumerate() {
        *v = i as f32;
    }
    c.bench_function("fragment_load_store", |b| {
        let mut f = Fragment::new(FragKind::MatrixA);
        b.iter(|| {
            f.load_matrix(std::hint::black_box(&m));
            std::hint::black_box(f.store_matrix())
        })
    });

    // One emulated m16n16k16 MMA (4096 FMA).
    let mut g = c.benchmark_group("mma");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("m16n16k16_emulated", |b| {
        let mut a = Fragment::new(FragKind::MatrixA);
        let mut bb = Fragment::new(FragKind::MatrixB);
        a.load_matrix(&m);
        bb.load_matrix(&m);
        let cc = Fragment::new(FragKind::Accumulator);
        let mut d = Fragment::new(FragKind::Accumulator);
        b.iter(|| mma_sync(&mut d, std::hint::black_box(&a), &bb, &cc))
    });
    g.finish();

    // Bitmap decode: all 32 lanes of one block.
    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(64));
    g.bench_function("lane_value_indices_warp", |b| {
        let bmp = 0xdead_beef_cafe_f00du64;
        b.iter(|| {
            let mut acc = 0u32;
            for lid in 0..32 {
                let (v1, v2) = lane_value_indices(std::hint::black_box(bmp), lid);
                acc = acc.wrapping_add(v1.unwrap_or(0)).wrapping_add(v2.unwrap_or(0));
            }
            acc
        })
    });
    g.finish();

    // f16 conversion round-trip.
    let mut g = c.benchmark_group("half");
    let vals: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
    g.throughput(Throughput::Elements(vals.len() as u64));
    g.bench_function("f32_to_f16_to_f32", |b| {
        b.iter(|| {
            vals.iter()
                .map(|&v| F16::from_f32(std::hint::black_box(v)).to_f32())
                .sum::<f32>()
        })
    });
    g.finish();

    // Coalescer on a strided warp access.
    let mut g = c.benchmark_group("memory_model");
    g.bench_function("coalesce_32_strided", |b| {
        let mut scratch = Vec::with_capacity(64);
        b.iter(|| {
            coalesce_into((0..32u64).map(|i| i * 128), std::hint::black_box(&mut scratch));
            scratch.len()
        })
    });
    g.bench_function("l2_access_stream", |b| {
        let mut l2 = L2Cache::new(1 << 20);
        let mut s = 0u64;
        b.iter(|| {
            s = s.wrapping_add(1);
            l2.access_sector(std::hint::black_box(s % 100_000))
        })
    });
    g.finish();

    // Reference CSR SpMV serial vs rayon-parallel.
    let csr = spaden_sparse::gen::random_uniform(20_000, 20_000, 600_000, 5);
    let x: Vec<f32> = (0..20_000).map(|i| (i % 17) as f32).collect();
    let mut g = c.benchmark_group("reference_spmv");
    g.throughput(Throughput::Elements(csr.nnz() as u64));
    g.sample_size(20);
    g.bench_function("csr_serial", |b| b.iter(|| csr.spmv(std::hint::black_box(&x)).unwrap()));
    g.bench_function("csr_parallel", |b| {
        b.iter(|| csr.spmv_par(std::hint::black_box(&x)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
