//! Criterion benches for the §7 future-work kernels: SpMM, SDDMM, SpGEMM
//! and bitCOO simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spaden::sparse::dense::Dense;
use spaden::{
    BitCooEngine, SpadenSddmmEngine, SpadenSpgemmEngine, SpadenSpmmEngine, SpmvEngine,
};
use spaden_bench::make_x;
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;

fn extensions(c: &mut Criterion) {
    let ds = by_name("cant").expect("dataset").generate(0.02);
    let nnz = ds.csr.nnz() as u64;

    let mut g = c.benchmark_group("ext_spmm");
    g.throughput(Throughput::Elements(nnz * 8));
    g.sample_size(10);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSpmmEngine::prepare(&gpu, &ds.csr);
        let b = Dense::from_fn(ds.csr.ncols, 8, |r, cc| ((r + cc) % 5) as f32);
        g.bench_function("spaden_spmm_n8", |bch| {
            bch.iter(|| engine.run(&gpu, std::hint::black_box(&b)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ext_sddmm");
    g.throughput(Throughput::Elements(nnz * 16));
    g.sample_size(10);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSddmmEngine::prepare(&gpu, &ds.csr);
        let x = Dense::from_fn(ds.csr.nrows, 16, |r, k| ((r * 3 + k) % 7) as f32 * 0.25);
        let y = Dense::from_fn(ds.csr.ncols, 16, |r, k| ((r + 2 * k) % 5) as f32 * 0.5);
        g.bench_function("spaden_sddmm_k16", |bch| {
            bch.iter(|| engine.run(&gpu, std::hint::black_box(&x), &y))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ext_spgemm");
    g.sample_size(10);
    {
        let small = by_name("cant").expect("dataset").generate(0.01);
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSpgemmEngine::prepare(&gpu, &small.csr, &small.csr);
        g.bench_function("spaden_spgemm_axa", |bch| bch.iter(|| engine.run(&gpu)));
    }
    g.finish();

    let mut g = c.benchmark_group("ext_bitcoo");
    g.throughput(Throughput::Elements(nnz));
    g.sample_size(10);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = BitCooEngine::prepare(&gpu, &ds.csr);
        let x = make_x(ds.csr.ncols);
        g.bench_function("bitcoo_spmv", |bch| {
            bch.iter(|| engine.run(&gpu, std::hint::black_box(&x)))
        });
    }
    g.finish();
}

criterion_group!(benches, extensions);
criterion_main!(benches);
