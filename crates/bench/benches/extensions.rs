//! Benches for the §7 future-work kernels: SpMM, SDDMM, SpGEMM and bitCOO
//! simulation throughput.

use spaden::sparse::dense::Dense;
use spaden::{
    BitCooEngine, SpadenSddmmEngine, SpadenSpgemmEngine, SpadenSpmmEngine, SpmvEngine,
};
use spaden_bench::{make_x, BenchGroup};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::by_name;

fn main() {
    let ds = by_name("cant").expect("dataset").generate(0.02);
    let nnz = ds.csr.nnz() as u64;

    let mut g = BenchGroup::new("ext_spmm");
    g.throughput(nnz * 8);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSpmmEngine::prepare(&gpu, &ds.csr);
        let b = Dense::from_fn(ds.csr.ncols, 8, |r, cc| ((r + cc) % 5) as f32);
        g.bench("spaden_spmm_n8", || engine.run(&gpu, std::hint::black_box(&b)));
    }

    let mut g = BenchGroup::new("ext_sddmm");
    g.throughput(nnz * 16);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSddmmEngine::prepare(&gpu, &ds.csr);
        let x = Dense::from_fn(ds.csr.nrows, 16, |r, k| ((r * 3 + k) % 7) as f32 * 0.25);
        let y = Dense::from_fn(ds.csr.ncols, 16, |r, k| ((r + 2 * k) % 5) as f32 * 0.5);
        g.bench("spaden_sddmm_k16", || engine.run(&gpu, std::hint::black_box(&x), &y));
    }

    let g = BenchGroup::new("ext_spgemm");
    {
        let small = by_name("cant").expect("dataset").generate(0.01);
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = SpadenSpgemmEngine::prepare(&gpu, &small.csr, &small.csr);
        g.bench("spaden_spgemm_axa", || engine.run(&gpu));
    }

    let mut g = BenchGroup::new("ext_bitcoo");
    g.throughput(nnz);
    {
        let gpu = Gpu::new(GpuConfig::l40());
        let engine = BitCooEngine::prepare(&gpu, &ds.csr);
        let x = make_x(ds.csr.ncols);
        g.bench("bitcoo_spmv", || engine.run(&gpu, std::hint::black_box(&x)));
    }
}
