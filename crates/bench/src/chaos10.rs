//! The `chaos` experiment: seeded multi-fault schedule exploration with
//! the global invariant oracle, behind the `CHAOS` verdict line.
//!
//! One sweep generates hundreds of [`ChaosSchedule`]s — each correlating
//! at least three fault families inside a commit-aligned window — runs
//! every one through the full serving stack, and demands zero invariant
//! violations plus per-seed digest determinism. On a violation the
//! shrinker's minimal reproducer is rendered as a replay file the
//! `repro chaos --replay` mode re-runs bit-exactly. CI's chaos-smoke job
//! gates on the `repro` exit code.
//!
//! [`ChaosSchedule`]: spaden_chaos::ChaosSchedule

use crate::table::Table;
use crate::verdict::Verdict;
use spaden_chaos::{explore, ChaosFindings, ExploreConfig, FaultFamily, FAMILIES};
use spaden_gpusim::GpuConfig;

/// Runs the sweep on `gpu` and renders the coverage tables and the
/// typed `CHAOS` verdict.
pub fn chaos_report(gpu: &GpuConfig, cfg: &ExploreConfig) -> (Vec<Table>, Verdict, ChaosFindings) {
    let findings = explore(gpu, cfg);

    // Fault-family coverage: in how many explored schedules was each
    // family active (regenerated from the seed — schedules are pure
    // functions of profile + seed).
    let mut active = [0usize; FAMILIES];
    for row in &findings.rows {
        let sched = cfg.profile.schedule(row.seed);
        for (i, fam) in FaultFamily::ALL.iter().enumerate() {
            if sched.events.iter().any(|e| e.family() == *fam) {
                active[i] += 1;
            }
        }
    }
    let mut coverage = Table::new(
        format!("Chaos fault-family coverage ({})", gpu.name),
        &["family", "schedules active", "share"],
    );
    for (i, fam) in FaultFamily::ALL.iter().enumerate() {
        coverage.push_row(vec![
            fam.name().to_string(),
            active[i].to_string(),
            format!("{:.0}%", 100.0 * active[i] as f64 / findings.rows.len().max(1) as f64),
        ]);
    }

    let mut sweep = Table::new(
        format!("Chaos sweep summary ({})", gpu.name),
        &["metric", "value"],
    );
    let offered: usize = findings.rows.iter().map(|r| r.offered).sum();
    let served: usize = findings.rows.iter().map(|r| r.served).sum();
    let commits: u64 = findings.rows.iter().map(|r| r.commits).sum();
    let rollbacks: u64 = findings.rows.iter().map(|r| r.rollbacks).sum();
    let crash_checks: usize = findings.rows.iter().map(|r| r.crash_checks).sum();
    for (metric, value) in [
        ("schedules explored", findings.explored.to_string()),
        ("min simultaneous families", findings.min_simultaneous.to_string()),
        ("arrivals offered", offered.to_string()),
        ("results served (verified)", served.to_string()),
        ("updates committed", commits.to_string()),
        ("updates rolled back", rollbacks.to_string()),
        ("crash-point recovery audits", crash_checks.to_string()),
        ("determinism replays", findings.determinism_replays.to_string()),
        (
            "determinism replays bit-identical",
            if findings.determinism_ok { "all" } else { "NO" }.to_string(),
        ),
        ("invariant violations", findings.total_violations().to_string()),
    ] {
        sweep.push_row(vec![metric.to_string(), value]);
    }

    let complete = findings.explored == cfg.schedules;
    let pass = complete
        && findings.caught.is_none()
        && findings.total_violations() == 0
        && findings.determinism_ok
        && findings.min_simultaneous >= cfg.profile.min_families;
    let verdict = Verdict::new(
        pass,
        match &findings.caught {
            None => format!(
                "CHAOS {}: {} schedules explored (>= {} fault families simultaneously active), \
                 {} crash-point audits, {} invariant violations, {}/{} determinism replays bit-identical",
                if pass { "OK" } else { "FAIL" },
                findings.explored,
                findings.min_simultaneous,
                crash_checks,
                findings.total_violations(),
                if findings.determinism_ok { findings.determinism_replays } else { 0 },
                findings.determinism_replays,
            ),
            Some(c) => format!(
                "CHAOS FAIL: seed {} violated {} invariant(s); shrunk to {} fault event(s) / {} arrivals in {} runs",
                c.seed,
                c.violations.len(),
                c.shrunk.events.len(),
                c.shrunk.arrivals,
                c.shrink_runs,
            ),
        },
    );
    (vec![sweep, coverage], verdict, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_renders_and_passes() {
        let cfg = ExploreConfig { schedules: 2, replay_every: 2, ..ExploreConfig::smoke(31) };
        let (tables, verdict, findings) = chaos_report(&GpuConfig::l40(), &cfg);
        assert_eq!(tables.len(), 2);
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("CHAOS OK"), "{verdict}");
        assert!(findings.caught.is_none());
        let rendered = tables[1].to_string();
        assert!(rendered.contains("bit-flip"), "{rendered}");
    }
}
