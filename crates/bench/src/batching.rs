//! The `repro serve` batching experiment: the same Zipf same-matrix
//! open-loop workload served per-request and through the SpMM batching
//! window, side by side.
//!
//! Not a paper figure — it certifies the coalescing story layered on the
//! paper's SpMM kernel: when queued traffic shares a matrix, the batching
//! window gathers it into one bitBSR×dense sweep, amortising launch and
//! decode cost across the batch. The verdict asserts the acceptance bar
//! (≥ `min_speedup`× verified requests/sec at equal-or-better p99 under
//! peak load), sweeps actually forming, and zero unverified results in
//! either mode. CI's batch-smoke job greps the `BATCH` verdict line.

use crate::verdict::Verdict;
use crate::Table;
use spaden_gpusim::GpuConfig;
use spaden_serve::BatchConfig;
use spaden_traffic::{
    calibrate_capacity_rps, run_traffic, ArrivalProcess, Check, CorpusConfig, TrafficConfig,
    TrafficSummary,
};

/// Configuration of the batched-vs-per-request comparison.
#[derive(Debug, Clone)]
pub struct BatchBenchConfig {
    /// Seed shared by both modes of every point — identical arrival
    /// schedules, so the only variable is the batching window.
    pub seed: u64,
    /// Simulated horizon per point.
    pub duration_s: f64,
    /// Load multipliers relative to per-request closed-loop capacity.
    /// The last (peak) multiplier carries the verdict.
    pub multipliers: Vec<f64>,
    /// Registered working set. Few matrices + the population's Zipf
    /// popularity skew = most queued neighbours share a matrix.
    pub corpus: CorpusConfig,
    /// Verified-requests/sec advantage the batched mode must show at the
    /// peak point.
    pub min_speedup: f64,
}

impl Default for BatchBenchConfig {
    fn default() -> Self {
        BatchBenchConfig {
            seed: 20_270,
            duration_s: 4e-3,
            multipliers: vec![1.0, 2.0, 4.0],
            corpus: CorpusConfig { matrices: 3, ..CorpusConfig::default() },
            min_speedup: 2.0,
        }
    }
}

impl BatchBenchConfig {
    /// A shortened scenario for CI smoke jobs.
    pub fn smoke() -> Self {
        BatchBenchConfig {
            duration_s: 1.5e-3,
            multipliers: vec![1.0, 4.0],
            ..BatchBenchConfig::default()
        }
    }
}

/// One load level, served both ways.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Load multiplier relative to per-request capacity.
    pub multiplier: f64,
    /// The run with batching disabled (PR-8 per-request behaviour).
    pub per_request: TrafficSummary,
    /// The run with the batching window enabled.
    pub batched: TrafficSummary,
}

/// Everything the batching experiment renders.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-request closed-loop capacity, requests per simulated second.
    pub capacity_rps: f64,
    /// One entry per multiplier.
    pub points: Vec<BatchPoint>,
    /// Verdict checks.
    pub checks: Vec<Check>,
    /// Verified-goodput ratio (batched / per-request) at the peak point.
    pub speedup: f64,
}

impl BatchReport {
    /// True when every check held.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Worst per-class p99 time-in-system among classes that served traffic.
fn worst_p99(s: &TrafficSummary) -> f64 {
    s.p99_s
        .iter()
        .zip(&s.served_by)
        .filter(|&(_, &n)| n > 0)
        .map(|(&p, _)| p)
        .fold(0.0, f64::max)
}

fn point_config(bench: &BatchBenchConfig, rate_rps: f64, batch: BatchConfig) -> TrafficConfig {
    let mut cfg =
        TrafficConfig::new(bench.seed, bench.duration_s, ArrivalProcess::Poisson { rate_rps });
    cfg.corpus = bench.corpus.clone();
    cfg.serve.batch = batch;
    cfg
}

/// Runs the comparison and assembles the verdict checks.
pub fn run_batch_bench(gpu: &GpuConfig, bench: &BatchBenchConfig) -> BatchReport {
    let capacity_rps =
        calibrate_capacity_rps(gpu, &point_config(bench, 1.0, BatchConfig::default()));
    let points: Vec<BatchPoint> = bench
        .multipliers
        .iter()
        .map(|&m| {
            let rate = m * capacity_rps;
            BatchPoint {
                multiplier: m,
                per_request: run_traffic(gpu, &point_config(bench, rate, BatchConfig::default())),
                batched: run_traffic(gpu, &point_config(bench, rate, BatchConfig::on())),
            }
        })
        .collect();

    let peak = points.last().expect("at least one multiplier");
    let speedup = if peak.per_request.goodput_rps() > 0.0 {
        peak.batched.goodput_rps() / peak.per_request.goodput_rps()
    } else {
        f64::INFINITY
    };
    let (p99_b, p99_p) = (worst_p99(&peak.batched), worst_p99(&peak.per_request));
    let unverified: u64 =
        points.iter().map(|p| p.per_request.unverified_ok + p.batched.unverified_ok).sum();

    let checks = vec![
        Check {
            name: "peak-load goodput advantage",
            pass: speedup >= bench.min_speedup,
            detail: format!(
                "batched {:.0} vs per-request {:.0} rps = {:.2}x (need {:.1}x)",
                peak.batched.goodput_rps(),
                peak.per_request.goodput_rps(),
                speedup,
                bench.min_speedup
            ),
        },
        Check {
            name: "equal-or-better p99 at peak",
            pass: p99_b <= p99_p,
            detail: format!("batched p99 {:.1}us vs per-request {:.1}us", p99_b * 1e6, p99_p * 1e6),
        },
        Check {
            name: "sweeps form and carry the load",
            pass: peak.batched.batches > 0 && peak.batched.coalescing_rate() > 0.5,
            detail: format!(
                "{} sweeps, mean width {:.1}, {:.0}% of served coalesced",
                peak.batched.batches,
                peak.batched.mean_batch_width(),
                peak.batched.coalescing_rate() * 100.0
            ),
        },
        Check {
            name: "zero unverified in either mode",
            pass: unverified == 0,
            detail: format!("{unverified} Ok results failed the f64 oracle"),
        },
        Check {
            name: "availability no worse when batching",
            pass: points
                .iter()
                .all(|p| p.batched.availability() >= p.per_request.availability() - 1e-9),
            detail: points
                .iter()
                .map(|p| {
                    format!(
                        "{:.1}x: {:.3} vs {:.3}",
                        p.multiplier,
                        p.batched.availability(),
                        p.per_request.availability()
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
        },
    ];
    BatchReport { capacity_rps, points, checks, speedup }
}

/// Runs the experiment on `gpu` and renders the comparison table, the
/// checks table, and the typed `BATCH` verdict.
pub fn batch_report(gpu: &GpuConfig, bench: &BatchBenchConfig) -> (Vec<Table>, Verdict, BatchReport) {
    let report = run_batch_bench(gpu, bench);

    let mut curve = Table::new(
        format!("Batched vs per-request serving ({})", gpu.name),
        &[
            "load", "mode", "offered", "goodput", "avail", "p99 us", "sweeps", "width",
            "coalesce", "fallback", "unverified",
        ],
    );
    for p in &report.points {
        for (mode, s) in [("single", &p.per_request), ("batched", &p.batched)] {
            curve.push_row(vec![
                format!("{:.1}x", p.multiplier),
                mode.to_string(),
                s.offered.to_string(),
                format!("{:.0}", s.goodput_rps()),
                format!("{:.4}", s.availability()),
                Table::num(worst_p99(s) * 1e6),
                s.batches.to_string(),
                format!("{:.1}", s.mean_batch_width()),
                format!("{:.0}%", s.coalescing_rate() * 100.0),
                s.batch_fallbacks.to_string(),
                s.unverified_ok.to_string(),
            ]);
        }
    }

    let mut checks = Table::new(
        format!("Batching verdict checks ({})", gpu.name),
        &["check", "pass", "evidence"],
    );
    for c in &report.checks {
        checks.push_row(vec![
            c.name.to_string(),
            if c.pass { "yes" } else { "NO" }.to_string(),
            c.detail.clone(),
        ]);
    }

    let peak = report.points.last().expect("at least one point");
    let verdict = Verdict::new(report.ok(), format!(
        "BATCH {}: batched {:.0} rps vs per-request {:.0} rps ({:.1}x) at peak load, \
         p99 {:.0}us vs {:.0}us, {:.0}% coalesced, {}/{} checks passed",
        if report.ok() { "OK" } else { "FAIL" },
        peak.batched.goodput_rps(),
        peak.per_request.goodput_rps(),
        report.speedup,
        worst_p99(&peak.batched) * 1e6,
        worst_p99(&peak.per_request) * 1e6,
        peak.batched.coalescing_rate() * 100.0,
        report.checks.iter().filter(|c| c.pass).count(),
        report.checks.len(),
    ));
    (vec![curve, checks], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_batching_wins_at_peak_load() {
        let (tables, verdict, report) = batch_report(&GpuConfig::l40(), &BatchBenchConfig::smoke());
        assert_eq!(tables.len(), 2);
        assert!(report.ok(), "verdict checks: {:?}", report.checks);
        assert!(report.speedup >= 2.0, "speedup {:.2}", report.speedup);
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("BATCH OK"), "{verdict}");
        let rendered = tables[0].to_string();
        assert!(rendered.contains("Batched vs per-request"));
        assert!(rendered.contains("coalesce"));
    }
}
