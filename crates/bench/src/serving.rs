//! The `repro serve` experiment: chaos-sweeps the resilient serving layer
//! and renders its SLO report.
//!
//! Not a paper figure — it certifies the availability story layered on
//! top of the paper's kernels: under swept fault rates, every request
//! resolves to a checksum-verified result (naming the failover-ladder
//! rung that produced it) or a typed error, breakers trip during the
//! fault burst and recover after it, and the p50/p99 simulated latencies
//! quantify the cost of degraded service.

use crate::verdict::Verdict;
use crate::Table;
use spaden_gpusim::GpuConfig;
use spaden_serve::{chaos_sweep, ChaosConfig, ChaosReport, Rung};

/// Runs the chaos sweep on `gpu` and renders the per-cell outcome table,
/// the latency table, and a one-line SLO verdict string.
pub fn serve_report(gpu: &GpuConfig, cfg: &ChaosConfig) -> (Vec<Table>, Verdict, ChaosReport) {
    let report = chaos_sweep(gpu, cfg);

    let mut outcomes = Table::new(
        format!("Serving outcomes under fault injection ({})", gpu.name),
        &[
            "rate", "seed", "reqs", "checked", "scalar", "csr", "overload", "invalid", "deadline",
            "exhaust", "unavail", "trips", "recover", "retries", "wrong",
        ],
    );
    for c in &report.cells {
        outcomes.push_row(vec![
            format!("{:.0e}", c.rate),
            c.seed.to_string(),
            c.submitted.to_string(),
            c.served[Rung::SpadenChecked as usize].to_string(),
            c.served[Rung::SpadenScalar as usize].to_string(),
            c.served[Rung::CsrBaseline as usize].to_string(),
            c.overloaded.to_string(),
            c.invalid.to_string(),
            c.deadline_exceeded.to_string(),
            c.exhausted.to_string(),
            c.unavailable.to_string(),
            c.trips.to_string(),
            c.recoveries.to_string(),
            c.retries.to_string(),
            c.silent_wrong.to_string(),
        ]);
    }

    let mut latency = Table::new(
        format!("Served-request simulated latency ({})", gpu.name),
        &["rate", "seed", "served", "p50 us", "p99 us", "p50 kcycle", "p99 kcycle"],
    );
    for c in &report.cells {
        latency.push_row(vec![
            format!("{:.0e}", c.rate),
            c.seed.to_string(),
            c.ok_total().to_string(),
            Table::num(c.p50_s * 1e6),
            Table::num(c.p99_s * 1e6),
            Table::num(c.p50_s * gpu.clock_hz / 1e3),
            Table::num(c.p99_s * gpu.clock_hz / 1e3),
        ]);
    }

    let verdict = Verdict::new(report.slo_holds(), format!(
        "SLO {}: {} requests, {} silently wrong, {} breaker trips, {} recoveries",
        if report.slo_holds() { "HELD" } else { "VIOLATED" },
        report.submitted(),
        report.silent_wrong(),
        report.trips(),
        report.recoveries(),
    ));
    (vec![outcomes, latency], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_slo_holds() {
        let cfg = ChaosConfig {
            rates: vec![0.0, 0.05],
            seeds: vec![5],
            requests_per_cell: 18,
            batch: 9,
            ..ChaosConfig::default()
        };
        let (tables, verdict, report) = serve_report(&GpuConfig::l40(), &cfg);
        assert_eq!(tables.len(), 2);
        assert_eq!(report.cells.len(), 2);
        assert!(report.slo_holds());
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("SLO HELD"), "{verdict}");
        let rendered = tables[0].to_string();
        assert!(rendered.contains("Serving outcomes"));
        assert!(rendered.contains("trips"));
    }
}
