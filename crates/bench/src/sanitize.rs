//! The `repro sanitize` experiment: runs every engine under SimSan.
//!
//! Not a paper figure — it certifies the sanitizer story in three parts:
//!
//! 1. **Clean sweep**: the full engine matrix runs violation-free under
//!    SimSan on a structurally diverse corpus, and each run's output is
//!    bit-identical to the same run with the sanitizer off (zero-cost-when-
//!    off, zero-false-positive-when-on).
//! 2. **Seeded injection**: each hazard class `gpusim::fault` can inject
//!    (out-of-bounds read, uninitialized read, intra-warp lane race,
//!    invalid atomic, fragment-mapping misuse) is detected with the right
//!    report kind, reproducibly from the seed; the table prints the first
//!    report's (kind, warp, lane, addr, step).
//! 3. **Numerical edge corpus**: `spaden_sparse::gen::numerical_edge_corpus`
//!    (f16 overflow/underflow extremes, cancellation, denormals, degenerate
//!    shapes) is pushed through the full serving ladder; every request must
//!    resolve to a verified finite result or a typed error, with the f16
//!    hazard cases demoted off the tensor-core rung instead of returning
//!    poisoned output.
//!
//! The verdict line (`SAN OK` / `SAN FAIL`) is what CI's sanitize job
//! greps for.

use crate::verdict::Verdict;
use crate::registry::{try_build_engine, ALL_ENGINES};
use crate::table::Table;
use crate::make_x;
use spaden_gpusim::{FaultConfig, Gpu, GpuConfig, HazardKind, SanConfig, SanReport};
use spaden_serve::{Request, Rung, ServeConfig, SpmvServer};
use spaden_sparse::gen::{self, FillDist, Placement};
use spaden_sparse::Csr;

/// Everything `repro sanitize` measured, for programmatic checks.
pub struct SanitizeReport {
    /// (engine, matrix) cells in the clean sweep.
    pub clean_cases: usize,
    /// Sanitizer reports across all clean cells (must be 0).
    pub clean_violations: usize,
    /// Clean cells whose output differed bitwise from a sanitizer-off run
    /// (must be 0).
    pub bit_mismatches: usize,
    /// Injection classes swept.
    pub injection_classes: usize,
    /// Injection classes detected with the expected report kind.
    pub injection_detected: usize,
    /// Edge-corpus requests pushed through the serving ladder.
    pub ladder_cases: usize,
    /// Edge-corpus requests that resolved to a verified finite result or a
    /// typed error (must equal `ladder_cases`).
    pub ladder_resolved: usize,
    /// f16 hazard cases that were demoted off the ABFT tensor-core rung.
    pub hazards_demoted: usize,
    /// f16 hazard cases in the corpus.
    pub hazard_cases: usize,
}

impl SanitizeReport {
    /// The verdict CI gates on.
    pub fn ok(&self) -> bool {
        self.clean_violations == 0
            && self.bit_mismatches == 0
            && self.injection_detected == self.injection_classes
            && self.ladder_resolved == self.ladder_cases
            && self.hazards_demoted == self.hazard_cases
    }
}

/// Small structurally diverse corpus for the clean sweep: blocked dense
/// (tensor-core path), blocked sparse fills, scalar scatter, banded.
/// Fixed seeds — the sweep must be reproducible run to run.
fn clean_corpus() -> Vec<(String, Csr)> {
    let b = |name: &str, csr: Csr| (name.to_string(), csr);
    vec![
        b(
            "banded-dense",
            gen::generate_blocked(768, 900, Placement::Banded { bandwidth: 4 }, &FillDist::Dense, 71),
        ),
        b(
            "scattered-sparse",
            gen::generate_blocked(
                768,
                1200,
                Placement::Scattered,
                &FillDist::Uniform { lo: 1, hi: 8 },
                73,
            ),
        ),
        b("uniform-scalar", gen::random_uniform(600, 600, 7000, 79)),
        b("banded-scalar", gen::banded(512, 9, 6, 83)),
    ]
}

/// Runs one engine under the sanitizer and returns `(y, reports)`.
fn run_sanitized(
    kind: crate::EngineKind,
    cfg: &GpuConfig,
    csr: &Csr,
    x: &[f32],
    faults: FaultConfig,
) -> Result<(Vec<f32>, Vec<SanReport>), String> {
    let mut c = cfg.clone();
    c.faults = faults;
    c.san = SanConfig::on();
    let gpu = Gpu::new(c);
    let engine = try_build_engine(kind, &gpu, csr).map_err(|e| e.to_string())?;
    let run = engine.try_run(&gpu, x).map_err(|e| e.to_string())?;
    Ok((run.y, gpu.take_san_reports()))
}

/// Runs one engine with the sanitizer off (reference for bit-identity).
fn run_plain(
    kind: crate::EngineKind,
    cfg: &GpuConfig,
    csr: &Csr,
    x: &[f32],
) -> Result<Vec<f32>, String> {
    let gpu = Gpu::new(cfg.clone());
    let engine = try_build_engine(kind, &gpu, csr).map_err(|e| e.to_string())?;
    Ok(engine.try_run(&gpu, x).map_err(|e| e.to_string())?.y)
}

/// Renders one report as the compact diagnostic CI prints.
fn fmt_report(r: Option<&SanReport>) -> String {
    match r {
        Some(r) => format!(
            "{} warp={} lane={} addr={} step={}",
            r.kind.name(),
            r.warp.map_or("-".into(), |w| w.to_string()),
            r.lane.map_or("-".into(), |l| l.to_string()),
            r.addr.map_or("-".into(), |a| format!("{a:#x}")),
            r.step,
        ),
        None => "(none)".into(),
    }
}

/// Runs the three-part sanitizer certification, renders the tables, and
/// returns the verdict line.
pub fn sanitize_report(gpus: &[GpuConfig]) -> (Vec<Table>, Verdict, SanitizeReport) {
    let cfg = gpus.first().cloned().unwrap_or_else(GpuConfig::l40);
    let corpus = clean_corpus();

    // ---- Part 1: clean sweep, every engine x every corpus matrix --------
    let mut clean = Table::new(
        format!("SimSan clean sweep ({})", cfg.name),
        &["engine", "matrix", "reports", "bit-identical"],
    );
    let (mut clean_cases, mut clean_violations, mut bit_mismatches) = (0usize, 0usize, 0usize);
    for &kind in ALL_ENGINES.iter() {
        for (name, csr) in &corpus {
            let x = make_x(csr.ncols);
            let (y_san, reports) =
                match run_sanitized(kind, &cfg, csr, &x, FaultConfig::disabled()) {
                    Ok(v) => v,
                    Err(e) => {
                        clean.push_row(vec![
                            kind.name().into(),
                            name.clone(),
                            format!("ERROR: {e}"),
                            "-".into(),
                        ]);
                        clean_violations += 1;
                        continue;
                    }
                };
            let identical = match run_plain(kind, &cfg, csr, &x) {
                Ok(y_off) => {
                    y_san.len() == y_off.len()
                        && y_san
                            .iter()
                            .zip(&y_off)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                }
                Err(_) => false,
            };
            clean_cases += 1;
            clean_violations += reports.len();
            bit_mismatches += usize::from(!identical);
            clean.push_row(vec![
                kind.name().into(),
                name.clone(),
                reports.len().to_string(),
                if identical { "yes".into() } else { "NO".into() },
            ]);
        }
    }

    // ---- Part 2: seeded hazard injection, one class at a time ----------
    // The Spaden kernel exercises gathers, scatters, and tensor-core
    // fragment writes; Gunrock's edge-centric kernel is the atomic user.
    let d = FaultConfig::disabled();
    let inject_classes: [(&str, FaultConfig, crate::EngineKind, HazardKind); 5] = [
        (
            "oob-read",
            FaultConfig { seed: 0xA1, oob_read_rate: 0.05, ..d },
            crate::EngineKind::Spaden,
            HazardKind::OutOfBounds,
        ),
        (
            "uninit-read",
            FaultConfig { seed: 0xA2, uninit_read_rate: 0.05, ..d },
            crate::EngineKind::Spaden,
            HazardKind::UninitRead,
        ),
        (
            "lane-race",
            FaultConfig { seed: 0xA3, lane_race_rate: 0.05, ..d },
            crate::EngineKind::Spaden,
            HazardKind::LaneRace,
        ),
        (
            "invalid-atomic",
            FaultConfig { seed: 0xA4, invalid_atomic_rate: 0.05, ..d },
            crate::EngineKind::Gunrock,
            HazardKind::AtomicConflict,
        ),
        (
            "frag-misuse",
            FaultConfig { seed: 0xA5, frag_misuse_rate: 0.05, ..d },
            crate::EngineKind::Spaden,
            HazardKind::FragmentMapping,
        ),
    ];
    let inject_matrix = gen::generate_blocked(
        768,
        1100,
        Placement::Scattered,
        &FillDist::Uniform { lo: 8, hi: 40 },
        89,
    );
    let mut inject = Table::new(
        format!("Seeded hazard injection ({})", cfg.name),
        &["class", "engine", "expected", "reports", "first matching report"],
    );
    let (mut injection_classes, mut injection_detected) = (0usize, 0usize);
    for (label, faults, kind, expected) in inject_classes {
        injection_classes += 1;
        let x = make_x(inject_matrix.ncols);
        let (reports, matching) = match run_sanitized(kind, &cfg, &inject_matrix, &x, faults) {
            Ok((_, reports)) => {
                let m = reports.iter().find(|r| r.kind == expected).cloned();
                (reports, m)
            }
            Err(_) => (Vec::new(), None),
        };
        if matching.is_some() {
            injection_detected += 1;
        }
        inject.push_row(vec![
            label.into(),
            kind.name().into(),
            expected.name().into(),
            reports.len().to_string(),
            fmt_report(matching.as_ref()),
        ]);
    }

    // ---- Part 3: numerical edge corpus through the serving ladder -------
    let mut ladder = Table::new(
        format!("Numerical edge corpus through the serve ladder ({})", cfg.name),
        &["case", "outcome", "rung", "finite y", "f16 hazard demoted"],
    );
    let mut srv_cfg = cfg.clone();
    srv_cfg.san = SanConfig::on();
    let (mut ladder_cases, mut ladder_resolved) = (0usize, 0usize);
    let (mut hazard_cases, mut hazards_demoted) = (0usize, 0usize);
    for case in gen::numerical_edge_corpus() {
        ladder_cases += 1;
        // The f16 guard rails must force these cases off the tensor-core
        // rung (the only rung whose checked run raises NumericalHazard).
        let is_hazard = matches!(case.name, "f16-overflow" | "f16-underflow");
        hazard_cases += usize::from(is_hazard);
        let mut srv = SpmvServer::new(Gpu::new(srv_cfg.clone()), ServeConfig::default());
        let h = match srv.register(&case.matrix) {
            Ok(h) => h,
            Err(e) => {
                // A typed rejection at registration is an acceptable
                // resolution for a degenerate structure — but the hazard
                // matrices are well-formed and must register.
                if !is_hazard {
                    ladder_resolved += 1;
                }
                ladder.push_row(vec![
                    case.name.into(),
                    format!("register failed: {e}"),
                    "-".into(),
                    "-".into(),
                    if is_hazard { "NO".into() } else { "-".into() },
                ]);
                continue;
            }
        };
        let req = Request { matrix: h, x: case.x.clone(), deadline_s: Some(1.0) };
        match srv.serve(req) {
            Ok(ok) => {
                let finite = ok.y.iter().all(|v| v.is_finite());
                let demoted = ok.rung != Rung::SpadenChecked;
                if finite {
                    ladder_resolved += 1;
                }
                if is_hazard && demoted && finite {
                    hazards_demoted += 1;
                }
                ladder.push_row(vec![
                    case.name.into(),
                    "served".into(),
                    ok.rung.name().into(),
                    if finite { "yes".into() } else { "NO".into() },
                    if is_hazard {
                        if demoted { "yes".into() } else { "NO".into() }
                    } else {
                        "-".into()
                    },
                ]);
            }
            Err(e) => {
                // A typed error is an acceptable resolution for a
                // degenerate case, but a hazard case must degrade to a
                // verified rung, not fail outright.
                if !is_hazard {
                    ladder_resolved += 1;
                }
                ladder.push_row(vec![
                    case.name.into(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    if is_hazard { "NO".into() } else { "-".into() },
                ]);
            }
        }
    }

    let report = SanitizeReport {
        clean_cases,
        clean_violations,
        bit_mismatches,
        injection_classes,
        injection_detected,
        ladder_cases,
        ladder_resolved,
        hazards_demoted,
        hazard_cases,
    };
    let verdict = Verdict::new(report.ok(), format!(
        "SAN {}: {} clean cells with {} violations and {} bit mismatches; \
         {}/{} injected hazard classes detected; {}/{} edge cases resolved; \
         {}/{} f16 hazard cases demoted off the tensor-core rung",
        if report.ok() { "OK" } else { "FAIL" },
        report.clean_cases,
        report.clean_violations,
        report.bit_mismatches,
        report.injection_detected,
        report.injection_classes,
        report.ladder_resolved,
        report.ladder_cases,
        report.hazards_demoted,
        report.hazard_cases,
    ));
    (vec![clean, inject, ladder], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_report_holds_on_l40() {
        let (tables, verdict, report) = sanitize_report(&[GpuConfig::l40()]);
        assert_eq!(tables.len(), 3);
        assert_eq!(report.clean_violations, 0, "{verdict}");
        assert_eq!(report.bit_mismatches, 0, "{verdict}");
        assert_eq!(report.injection_detected, report.injection_classes, "{verdict}");
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("SAN OK"), "{verdict}");
    }

    #[test]
    fn clean_corpus_is_valid() {
        for (name, csr) in clean_corpus() {
            csr.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
