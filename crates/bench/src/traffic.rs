//! The `repro traffic` experiment: open-loop saturation sweep of the
//! serving stack and its overload-control verdict.
//!
//! Not a paper figure — it certifies the capacity story: maximum
//! sustained throughput at ≥ 99% availability, graceful degradation
//! (not collapse) past saturation, high-priority protection through
//! brownout, and zero unverified results in any degraded mode. CI's
//! traffic-smoke job greps the `TRAFFIC` verdict line.

use crate::verdict::Verdict;
use crate::Table;
use spaden_gpusim::GpuConfig;
use spaden_serve::Priority;
use spaden_traffic::{traffic_sweep, SweepConfig, TrafficReport, TrafficSummary};

fn priority_cells(s: &TrafficSummary) -> Vec<String> {
    Priority::ALL
        .iter()
        .flat_map(|&p| {
            vec![
                format!("{:.4}", s.availability_of(p)),
                Table::num(s.p99_s[p as usize] * 1e6),
            ]
        })
        .collect()
}

fn push_scenario_row(table: &mut Table, label: String, s: &TrafficSummary) {
    let mut row = vec![
        label,
        s.offered.to_string(),
        format!("{:.0}", s.offered_rps()),
        format!("{:.0}", s.goodput_rps()),
        format!("{:.4}", s.availability()),
    ];
    row.extend(priority_cells(s));
    row.extend([
        s.queue_shed.total().to_string(),
        s.overload.shed_brownout.iter().sum::<u64>().to_string(),
        s.unverified_ok.to_string(),
    ]);
    table.push_row(row);
}

/// Runs the sweep on `gpu` and renders the degradation-curve table, the
/// shed/SLO table, and the one-line `TRAFFIC` verdict string.
pub fn traffic_report(gpu: &GpuConfig, cfg: &SweepConfig) -> (Vec<Table>, Verdict, TrafficReport) {
    let report = traffic_sweep(gpu, cfg);

    let mut curve = Table::new(
        format!("Open-loop saturation sweep ({})", gpu.name),
        &[
            "load", "offered", "rps", "goodput", "avail", "High av", "High p99us", "Norm av",
            "Norm p99us", "Low av", "Low p99us", "qshed", "brownout", "unverified",
        ],
    );
    for p in &report.points {
        push_scenario_row(&mut curve, format!("{:.1}x", p.multiplier), &p.summary);
    }
    if let Some(f) = &report.flash {
        push_scenario_row(&mut curve, "flash".into(), f);
    }

    // Time-resolved view: one row per window, one column per scenario.
    // A brownout episode or transient cliff that the whole-run numbers
    // average away shows up here as a bad cell.
    let mut scenarios: Vec<(String, &TrafficSummary)> =
        report.points.iter().map(|p| (format!("{:.1}x", p.multiplier), &p.summary)).collect();
    if let Some(f) = &report.flash {
        scenarios.push(("flash".into(), f));
    }
    let mut headers = vec!["window".to_string()];
    headers.extend(scenarios.iter().map(|(l, _)| format!("{l} av/p99us")));
    let mut windows = Table::new(
        format!("Time-resolved availability / p99 ({})", gpu.name),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let nwin = scenarios.iter().map(|(_, s)| s.windows.len()).max().unwrap_or(0);
    for w in 0..nwin {
        let mut row = Vec::with_capacity(scenarios.len() + 1);
        for (i, (_, s)) in scenarios.iter().enumerate() {
            let ws = &s.windows[w];
            if i == 0 {
                row.push(format!("[{:.2}, {:.2})ms", ws.start_s * 1e3, ws.end_s * 1e3));
            }
            row.push(if ws.offered == 0 {
                "-".into()
            } else {
                format!("{:.3}/{:.0}", ws.availability, ws.p99_s * 1e6)
            });
        }
        windows.push_row(row);
    }

    let mut checks = Table::new(
        format!("Overload-control verdict checks ({})", gpu.name),
        &["check", "pass", "evidence"],
    );
    for c in &report.checks {
        checks.push_row(vec![
            c.name.to_string(),
            if c.pass { "yes" } else { "NO" }.to_string(),
            c.detail.clone(),
        ]);
    }

    let verdict = Verdict::new(report.ok(), format!(
        "TRAFFIC {}: capacity {:.0} rps, max sustained {:.0} rps at >= {:.0}% availability, {}/{} checks passed",
        if report.ok() { "OK" } else { "FAIL" },
        report.capacity_rps,
        report.max_sustained_rps,
        cfg.min_availability * 100.0,
        report.checks.iter().filter(|c| c.pass).count(),
        report.checks.len(),
    ));
    (vec![curve, windows, checks], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_verdict_holds() {
        let cfg = SweepConfig {
            duration_s: 1.5e-3,
            multipliers: vec![0.5, 1.5],
            flash_crowd: false,
            ..SweepConfig::default()
        };
        let (tables, verdict, report) = traffic_report(&GpuConfig::l40(), &cfg);
        assert_eq!(tables.len(), 3);
        assert_eq!(report.points.len(), 2);
        assert!(report.ok(), "verdict checks: {:?}", report.checks);
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("TRAFFIC OK"), "{verdict}");
        let rendered = tables[0].to_string();
        assert!(rendered.contains("saturation sweep"));
        let windows = tables[1].to_string();
        assert!(windows.contains("Time-resolved"));
        assert!(windows.contains("0.5x av/p99us"), "{windows}");
        assert!(tables[2].to_string().contains("bit-deterministic"));
    }
}
