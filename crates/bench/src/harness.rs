//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the `[[bench]]` targets cannot pull in
//! criterion; this module provides the small subset they need — warm-up,
//! auto-calibrated iteration counts, best/mean wall time and element
//! throughput — printed one line per benchmark.

use std::time::Instant;

/// Target total measurement time per benchmark.
const TARGET_SECONDS: f64 = 0.05;

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct BenchGroup {
    name: String,
    /// Elements processed per iteration, for throughput reporting.
    pub elements: u64,
}

impl BenchGroup {
    /// Starts a group; prints its header.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name}");
        BenchGroup { name, elements: 0 }
    }

    /// Sets per-iteration element throughput for subsequent benchmarks.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.elements = elements;
        self
    }

    /// Times `f`, auto-scaling iterations toward [`TARGET_SECONDS`].
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warm-up
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((TARGET_SECONDS / once).ceil() as u64).clamp(3, 10_000);
        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed().as_secs_f64();
            best = best.min(dt);
            total += dt;
        }
        let mean = total / iters as f64;
        let thr = if self.elements > 0 {
            format!("  {:>9.1} Melem/s", self.elements as f64 / best / 1e6)
        } else {
            String::new()
        };
        println!(
            "{:<28} {label:<24} {iters:>6} it  mean {}  best {}{thr}",
            self.name,
            fmt_secs(mean),
            fmt_secs(best)
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>8.3} s ")
    } else if s >= 1e-3 {
        format!("{:>8.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>8.3} us", s * 1e6)
    } else {
        format!("{:>8.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut g = BenchGroup::new("selftest");
        g.throughput(8);
        let mut n = 0u64;
        g.bench("count", || {
            n += 1;
            n
        });
        assert!(n >= 4, "warm-up + calibration + >=3 samples");
    }

    #[test]
    fn fmt_secs_scales() {
        assert!(fmt_secs(2.0).contains("s"));
        assert!(fmt_secs(2e-3).contains("ms"));
        assert!(fmt_secs(2e-6).contains("us"));
        assert!(fmt_secs(2e-9).contains("ns"));
    }
}
