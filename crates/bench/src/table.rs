//! Minimal aligned-text table rendering for the experiment reports.

use std::fmt;

/// A titled table of string cells, rendered with aligned columns in
/// GitHub-flavoured markdown so reports paste straight into
/// EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Formats a float with 2 decimals ("-" for non-finite).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            "-".into()
        }
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "\n## {}\n", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, width) in w.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                write!(f, " {c:>width$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1.00".into()]);
        t.push_row(vec!["b".into(), "22.50".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha |"));
        assert!(s.contains("|-"));
        // Alignment: every data line has the same length.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn num_formats() {
        assert_eq!(Table::num(1.5), "1.50");
        assert_eq!(Table::num(f64::NAN), "-");
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new("R", &["a", "b", "c"]);
        t.push_row(vec!["x".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }
}
