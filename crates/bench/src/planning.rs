//! The `repro plan` experiment: certifies the plan layer.
//!
//! Not a paper figure — it validates the two claims the planner stack
//! makes on top of the paper's kernels:
//!
//! 1. **Selection**: the closed-form cost model in `spaden_plan::cost`
//!    picks the engine an exhaustive oracle (actually running every
//!    candidate on the simulator) would pick, on a structurally diverse
//!    synthetic corpus. A selection counts as correct when the chosen
//!    engine is the oracle's best or within 5% of it (a simulator tie).
//! 2. **Caching**: the memory-budgeted plan cache never holds more bytes
//!    than its budget, and repeat requests for an already-planned matrix
//!    hit the cache 100% of the time whenever the plan fit the budget.
//!
//! The verdict line (`PLAN OK` / `PLAN FAIL`) is what CI's plan smoke job
//! greps for.

use crate::verdict::Verdict;
use crate::registry::try_build_engine;
use crate::table::Table;
use crate::make_x;
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_plan::{EngineKind, Planner, ALL_ENGINES};
use spaden_sparse::gen::{self, FillDist, Placement};
use spaden_sparse::Csr;

/// Oracle-best tolerance: a choice whose measured time is within this
/// factor of the fastest engine's counts as correct — for scheduling
/// purposes, an engine within 5% of optimal is the right pick, and 5% is
/// below the simulator's own sensitivity to layout constants.
const TIE_FACTOR: f64 = 1.05;

/// Selector accuracy the verdict gates on (fraction of cases where the
/// planner picked the oracle-best engine, ties included).
const ACCURACY_FLOOR: f64 = 0.70;

/// One (matrix, GPU) selection case, fully measured.
pub struct PlanCase {
    /// Corpus matrix name.
    pub matrix: String,
    /// GPU the case ran on.
    pub gpu: String,
    /// Engine the planner selected.
    pub choice: EngineKind,
    /// Engine the exhaustive oracle found fastest.
    pub oracle_best: EngineKind,
    /// Cost-model prediction for the chosen engine (seconds).
    pub predicted_s: f64,
    /// Measured simulator time of the chosen engine (seconds).
    pub actual_s: f64,
    /// Measured simulator time of the oracle-best engine (seconds).
    pub best_s: f64,
}

impl PlanCase {
    /// Slowdown of the planner's choice relative to the oracle best
    /// (1.0 = picked the fastest engine).
    pub fn regret(&self) -> f64 {
        self.actual_s / self.best_s
    }

    /// Whether this case counts as a correct selection.
    pub fn hit(&self) -> bool {
        self.choice == self.oracle_best || self.regret() <= TIE_FACTOR
    }
}

/// Cache behaviour at one memory budget.
pub struct BudgetCell {
    /// Byte budget the cache ran under.
    pub budget: u64,
    /// Counters after two full passes over the corpus.
    pub stats: spaden_plan::CacheStats,
    /// Bytes resident when the sweep finished.
    pub bytes_resident: u64,
    /// Largest `bytes_resident` observed after any plan call.
    pub peak_bytes: u64,
    /// Second-pass hit rate (repeat requests for every corpus matrix).
    pub repeat_hit_rate: f64,
}

/// Everything `repro plan` measured, for programmatic checks.
pub struct PlanReport {
    /// Every (matrix, GPU) selection case.
    pub cases: Vec<PlanCase>,
    /// Budget sweep cells (one per budget, largest first).
    pub budgets: Vec<BudgetCell>,
    /// Fraction of cases where the planner matched the oracle.
    pub accuracy: f64,
    /// Geometric mean of `actual / best` across cases.
    pub geomean_regret: f64,
    /// Whether every budget kept `peak_bytes <= budget`.
    pub budgets_respected: bool,
    /// Whether the unconstrained-budget repeat pass hit 100%.
    pub repeats_all_hit: bool,
}

impl PlanReport {
    /// The verdict CI gates on.
    pub fn ok(&self) -> bool {
        self.accuracy >= ACCURACY_FLOOR && self.budgets_respected && self.repeats_all_hit
    }
}

/// Structurally diverse synthetic corpus: blocked/dense (tensor-core
/// territory), blocked/sparse fills, scattered scalar structures, banded
/// stencils, and power-law skew. Fixed seeds — the report must be
/// reproducible run to run.
pub fn plan_corpus() -> Vec<(String, Csr)> {
    // Sized so kernel bodies dominate the fixed launch overhead —
    // otherwise every engine "ties" and selection accuracy is vacuous.
    let b = |name: &str, csr: Csr| (name.to_string(), csr);
    vec![
        b(
            "stencil-dense",
            gen::generate_blocked(8192, 17000, Placement::Stencil, &FillDist::Dense, 11),
        ),
        b(
            "banded-dense",
            gen::generate_blocked(
                8192,
                15000,
                Placement::Banded { bandwidth: 6 },
                &FillDist::Dense,
                13,
            ),
        ),
        b(
            "clustered-half",
            gen::generate_blocked(
                6144,
                12000,
                Placement::Clustered { clusters: 3, radius: 4 },
                &FillDist::Uniform { lo: 24, hi: 48 },
                17,
            ),
        ),
        b(
            "scattered-sparse",
            gen::generate_blocked(
                6144,
                16000,
                Placement::Scattered,
                &FillDist::Uniform { lo: 1, hi: 6 },
                19,
            ),
        ),
        b(
            "powerlaw-mixed",
            gen::generate_blocked(
                6144,
                13000,
                Placement::PowerLaw { exponent: 1.4 },
                &FillDist::Mix(vec![(0.7, 1, 8), (0.3, 32, 64)]),
                23,
            ),
        ),
        b("uniform-scalar", gen::random_uniform(9000, 9000, 160000, 29)),
        b("uniform-light", gen::random_uniform(12000, 12000, 60000, 31)),
        b("scale-free", gen::scale_free(10000, 180000, 2.1, 37)),
        b("banded-scalar", gen::banded(9000, 24, 9, 41)),
        b("spd-banded", gen::spd_banded(8192, 20, 11, 43)),
    ]
}

/// Runs every candidate engine on `csr` and returns measured seconds per
/// kind (skipping engines that refuse the matrix).
fn oracle_times(gpu: &Gpu, csr: &Csr, x: &[f32]) -> Vec<(EngineKind, f64)> {
    let mut out = Vec::new();
    for &kind in ALL_ENGINES.iter() {
        let engine = match try_build_engine(kind, gpu, csr) {
            Ok(e) => e,
            Err(_) => continue,
        };
        match engine.try_run(gpu, x) {
            Ok(run) => out.push((kind, run.time.seconds)),
            Err(_) => continue,
        }
    }
    out
}

/// Runs the selection study and the cache budget sweep, renders the
/// tables, and returns the verdict line.
pub fn plan_report(gpus: &[GpuConfig]) -> (Vec<Table>, Verdict, PlanReport) {
    let corpus = plan_corpus();

    // ---- Selection accuracy vs the exhaustive oracle -------------------
    // The oracle runs every candidate once per (gpu, matrix); the per-case
    // scatter and the per-engine model-error table both read from it.
    let mut cases = Vec::new();
    let mut ratios_by_kind: Vec<(EngineKind, Vec<f64>)> =
        ALL_ENGINES.iter().map(|&k| (k, Vec::new())).collect();
    let mut scatter = Table::new(
        "Cost model vs oracle (per case)",
        &["gpu", "matrix", "chosen", "pred us", "actual us", "best", "best us", "regret"],
    );
    for cfg in gpus {
        let gpu = Gpu::new(cfg.clone());
        for (name, csr) in &corpus {
            let x = make_x(csr.ncols);
            let mut planner = Planner::with_all_engines(u64::MAX);
            let plan = match planner.plan(&gpu, csr) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("plan: {name} on {}: {e}", cfg.name);
                    continue;
                }
            };
            let times = oracle_times(&gpu, csr, &x);
            let Some(&(oracle_best, best_s)) = times.iter().min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                eprintln!("plan: {name} on {}: no engine ran", cfg.name);
                continue;
            };
            for (kind, actual) in &times {
                if let Some(r) = plan.ranking.iter().find(|r| r.kind == *kind) {
                    let bucket =
                        &mut ratios_by_kind.iter_mut().find(|(k, _)| k == kind).unwrap().1;
                    bucket.push(r.predicted.seconds / actual);
                }
            }
            let actual_s = times
                .iter()
                .find(|(k, _)| *k == plan.choice)
                .map(|(_, s)| *s)
                .unwrap_or(f64::INFINITY);
            let case = PlanCase {
                matrix: name.clone(),
                gpu: cfg.name.to_string(),
                choice: plan.choice,
                oracle_best,
                predicted_s: plan.predicted_seconds(),
                actual_s,
                best_s,
            };
            scatter.push_row(vec![
                case.gpu.clone(),
                case.matrix.clone(),
                case.choice.name().to_string(),
                Table::num(case.predicted_s * 1e6),
                Table::num(case.actual_s * 1e6),
                case.oracle_best.name().to_string(),
                Table::num(case.best_s * 1e6),
                format!("{:.3}{}", case.regret(), if case.hit() { "" } else { " MISS" }),
            ]);
            cases.push(case);
        }
    }
    let hits = cases.iter().filter(|c| c.hit()).count();
    let exact = cases.iter().filter(|c| c.choice == c.oracle_best).count();
    let accuracy = hits as f64 / cases.len().max(1) as f64;
    let geomean_regret = (cases.iter().map(|c| c.regret().ln()).sum::<f64>()
        / cases.len().max(1) as f64)
        .exp();

    // Per-engine prediction error: how far the closed-form model sits from
    // the simulator, aggregated over every case where the engine ran.
    let mut model = Table::new(
        "Cost model prediction error by engine",
        &["engine", "cases", "geomean pred/actual", "max over", "max under"],
    );
    for (kind, ratios) in &ratios_by_kind {
        if ratios.is_empty() {
            continue;
        }
        let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        let over = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let under = ratios.iter().cloned().fold(f64::MAX, f64::min);
        model.push_row(vec![
            kind.name().to_string(),
            ratios.len().to_string(),
            format!("{gm:.2}"),
            format!("{over:.2}"),
            format!("{under:.2}"),
        ]);
    }

    // ---- Cache behaviour under a memory-budget sweep -------------------
    // Budgets derive from what the corpus actually pins: everything fits /
    // roughly half fits / only a couple of plans fit.
    let gpu = Gpu::new(gpus.first().cloned().unwrap_or_else(GpuConfig::l40));
    let mut total_bytes = 0u64;
    {
        let mut sizer = Planner::with_all_engines(u64::MAX);
        for (_, csr) in &corpus {
            if let Ok(p) = sizer.plan(&gpu, csr) {
                total_bytes += p.device_bytes();
            }
        }
    }
    let budgets = [total_bytes.max(1), (total_bytes / 2).max(1), (total_bytes / 8).max(1)];

    let mut budget_table = Table::new(
        format!("Plan cache under memory budgets ({})", gpu.config.name),
        &[
            "budget B", "resident B", "peak B", "plans", "hits", "misses", "evict", "uncache",
            "repeat hit%",
        ],
    );
    let mut budget_cells = Vec::new();
    for &budget in &budgets {
        let mut planner = Planner::with_all_engines(budget);
        let mut peak = 0u64;
        // Pass 1: populate. Pass 2: every request is a repeat.
        let mut repeat_hits = 0usize;
        let mut repeats = 0usize;
        for pass in 0..2 {
            for (_, csr) in &corpus {
                if let Ok((_, src)) = planner.plan_traced(&gpu, csr) {
                    if pass == 1 {
                        repeats += 1;
                        if src == spaden_plan::PlanSource::CacheHit {
                            repeat_hits += 1;
                        }
                    }
                }
                peak = peak.max(planner.bytes_resident());
            }
        }
        let stats = planner.cache_stats();
        let repeat_hit_rate = repeat_hits as f64 / repeats.max(1) as f64;
        budget_table.push_row(vec![
            budget.to_string(),
            planner.bytes_resident().to_string(),
            peak.to_string(),
            planner.plans_resident().to_string(),
            stats.hits.to_string(),
            stats.misses.to_string(),
            stats.evictions.to_string(),
            stats.uncacheable.to_string(),
            format!("{:.0}", repeat_hit_rate * 100.0),
        ]);
        budget_cells.push(BudgetCell {
            budget,
            stats,
            bytes_resident: planner.bytes_resident(),
            peak_bytes: peak,
            repeat_hit_rate,
        });
    }

    let budgets_respected = budget_cells.iter().all(|c| c.peak_bytes <= c.budget);
    // Only the unconstrained budget (everything fits) must repeat at 100%;
    // tighter budgets legitimately evict.
    let repeats_all_hit =
        budget_cells.first().map(|c| c.repeat_hit_rate >= 1.0).unwrap_or(false);

    let report = PlanReport {
        accuracy,
        geomean_regret,
        budgets_respected,
        repeats_all_hit,
        cases,
        budgets: budget_cells,
    };
    let verdict = Verdict::new(report.ok(), format!(
        "PLAN {}: selector matched oracle on {}/{} cases ({:.0}%, floor {:.0}%; {} exact top-1), \
         geomean regret {:.3}x, budgets respected: {}, repeat hit rate at full budget: {}",
        if report.ok() { "OK" } else { "FAIL" },
        hits,
        report.cases.len(),
        accuracy * 100.0,
        ACCURACY_FLOOR * 100.0,
        exact,
        geomean_regret,
        if budgets_respected { "yes" } else { "NO" },
        if repeats_all_hit { "100%" } else { "NOT 100%" },
    ));
    (vec![scatter, model, budget_table], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_report_holds_on_l40() {
        let (tables, verdict, report) = plan_report(&[GpuConfig::l40()]);
        assert_eq!(tables.len(), 3);
        assert!(report.budgets_respected, "{verdict}");
        assert!(report.repeats_all_hit, "{verdict}");
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("PLAN OK"), "{verdict}");
    }

    #[test]
    fn corpus_is_valid_and_diverse() {
        let corpus = plan_corpus();
        assert!(corpus.len() >= 8);
        for (name, csr) in &corpus {
            csr.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
