//! The `repro evolve` experiment: verified streaming updates served
//! live, with epoch-consistent reads and rollback on corruption.
//!
//! Not a paper figure — it certifies the evolving-matrix lifecycle end
//! to end: a scale-free graph's adjacency matrix is registered through
//! [`SpmvServer::register_evolving`] and mutated by a seeded stream of
//! value-only and structural delta batches (including a clustered
//! "update storm") while open-loop read traffic runs against it. The
//! verdict asserts:
//!
//! * every compaction was verified bit-identical to a from-scratch
//!   rebuild, and every committed epoch passed the full-recompute audit
//!   of its incrementally repaired checksums;
//! * a seeded [`UpdateFault`] rolled its epoch back — the corrupt state
//!   was never published, and the previous epoch kept serving;
//! * zero torn or stale reads: every served result matches the f64
//!   oracle of *exactly* the epoch it was admitted on, and that epoch is
//!   exactly the one committed at its arrival time;
//! * the partition plan survives value-only updates (checksums
//!   re-sliced) and is rebuilt on structural ones;
//! * availability holds through the update storm;
//! * PageRank on the before/after snapshots converges, so the evolving
//!   matrix is a live graph workload, not just a buffer under churn.
//!
//! CI's evolve-smoke job greps the `EVOLVE` verdict line.
//!
//! [`SpmvServer::register_evolving`]: spaden_serve::SpmvServer::register_evolving
//! [`UpdateFault`]: spaden::UpdateFault

use crate::verdict::Verdict;
use crate::Table;
use spaden::{AbftChecksums, EvolveConfig, EvolvingMatrix, UpdateFault};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_graph::{pagerank, Graph};
use spaden_serve::{
    OpenRequest, OverloadConfig, Priority, Request, ScheduledUpdate, ServeConfig, ServeError,
    SpmvServer, UpdateOutcome,
};
use spaden_sparse::delta::{apply_to_csr, classify, Delta, DeltaBatch, DeltaClass, UpdateError};
use spaden_sparse::{gen, Csr, Pcg64};
use spaden_traffic::{traffic_x, window_stats, Check};
use std::collections::BTreeSet;

/// Shape of one `repro evolve` run. Everything is seeded; two runs of
/// the same scenario produce identical tables and verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolveScenario {
    /// Seed for the graph, the update stream, and the arrival schedule.
    pub seed: u64,
    /// Simulated horizon.
    pub duration_s: f64,
    /// Offered read load as a fraction of calibrated capacity.
    pub load: f64,
    /// Graph nodes (matrix dimension).
    pub nodes: usize,
    /// Initial edges (matrix nonzeros before updates).
    pub edges: usize,
    /// Regular update batches spread across the horizon.
    pub updates: usize,
    /// Extra update batches crammed into the storm window.
    pub storm: usize,
    /// Consecutive [`UpdateFault`]-injected batches at mid-run. Every
    /// one must roll back, with the served epoch unchanged throughout
    /// the storm (clamped to at least 1).
    pub fault_storm: usize,
    /// Time slices for the availability curve.
    pub windows: usize,
}

impl Default for EvolveScenario {
    fn default() -> Self {
        EvolveScenario {
            seed: 20_267,
            duration_s: 4e-3,
            load: 0.5,
            nodes: 96,
            edges: 900,
            updates: 8,
            storm: 4,
            fault_storm: 3,
            windows: 8,
        }
    }
}

impl EvolveScenario {
    /// A shorter run for CI smoke jobs — same structure, fewer events.
    pub fn smoke() -> Self {
        EvolveScenario { duration_s: 2e-3, updates: 5, storm: 3, fault_storm: 2, ..Default::default() }
    }
}

/// Everything `repro evolve` renders.
#[derive(Debug, Clone)]
pub struct EvolveReport {
    /// Per-scheduled-update ledger (in schedule order).
    pub updates: Vec<UpdateRow>,
    /// Served / offered over the whole run.
    pub availability: f64,
    /// Worst per-window availability.
    pub min_window_availability: f64,
    /// Served results cross-checked against their epoch's f64 oracle.
    pub verified_reads: u64,
    /// The verdict checks, in order.
    pub checks: Vec<Check>,
}

impl EvolveReport {
    /// Whether every verdict check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// One scheduled update's outcome, for the ledger table.
#[derive(Debug, Clone)]
pub struct UpdateRow {
    /// When the batch landed (simulated seconds).
    pub at_s: f64,
    /// Value-only or structural, against the pre-update truth.
    pub class: DeltaClass,
    /// Whether the schedule injected an [`UpdateFault`] into it.
    pub faulted: bool,
    /// The serving layer's account, or the typed rollback error.
    pub outcome: Result<UpdateOutcome, ServeError>,
}

/// The update schedule plus its ground truth: the per-epoch CSR
/// snapshot chain every served read is verified against.
struct EvolvePlan {
    initial: Csr,
    schedule: Vec<(ScheduledUpdate, bool)>, // (update, expect_rollback)
    /// `snapshots[e]` is the truth at epoch `e`.
    snapshots: Vec<Csr>,
    expected_value_only: u64,
    expected_structural: u64,
}

fn occupied_blocks(csr: &Csr) -> BTreeSet<(u32, u32)> {
    let mut s = BTreeSet::new();
    for r in 0..csr.nrows {
        let (cols, _) = csr.row(r);
        for &c in cols {
            s.insert((r as u32 / 8, c / 8));
        }
    }
    s
}

/// `k` overwrites of existing entries with fresh values.
pub(crate) fn value_only_batch(truth: &Csr, rng: &mut Pcg64, k: usize) -> DeltaBatch {
    let mut deltas = Vec::new();
    let mut seen = BTreeSet::new();
    while deltas.len() < k {
        let row = rng.below_usize(truth.nrows);
        let (cols, _) = truth.row(row);
        if cols.is_empty() {
            continue;
        }
        let col = cols[rng.below_usize(cols.len())];
        if seen.insert((row as u32, col)) {
            deltas.push(Delta { row: row as u32, col, value: rng.range_f32(0.05, 1.0) });
        }
    }
    DeltaBatch::new(deltas, truth.nrows, truth.ncols).expect("generated batch is valid")
}

/// New edges: `fresh` land in blocks the base format does not have yet
/// (exercising the side buffer and, past the threshold, compaction) and
/// `k - fresh` land at absent positions anywhere.
pub(crate) fn structural_batch(truth: &Csr, rng: &mut Pcg64, k: usize, fresh: usize) -> DeltaBatch {
    let occupied = occupied_blocks(truth);
    let mut deltas = Vec::new();
    let mut seen = BTreeSet::new();
    let mut new_blocks = BTreeSet::new();
    while new_blocks.len() < fresh {
        let (br, bc) =
            (rng.below_usize(truth.nrows / 8) as u32, rng.below_usize(truth.ncols / 8) as u32);
        if !occupied.contains(&(br, bc)) && new_blocks.insert((br, bc)) {
            let (row, col) = (br * 8 + rng.below_usize(8) as u32, bc * 8 + rng.below_usize(8) as u32);
            seen.insert((row, col));
            deltas.push(Delta { row, col, value: rng.range_f32(0.05, 1.0) });
        }
    }
    while deltas.len() < k {
        let row = rng.below_usize(truth.nrows) as u32;
        let col = rng.below_usize(truth.ncols) as u32;
        let (cols, _) = truth.row(row as usize);
        if !cols.contains(&col) && seen.insert((row, col)) {
            deltas.push(Delta { row, col, value: rng.range_f32(0.05, 1.0) });
        }
    }
    DeltaBatch::new(deltas, truth.nrows, truth.ncols).expect("generated batch is valid")
}

/// Builds the seeded graph, the update schedule (regular cadence, one
/// faulted batch mid-run, a storm cluster), and the epoch snapshot
/// chain that serves as the read oracle.
fn build_plan(cfg: &EvolveScenario, matrix: spaden_serve::MatrixHandle) -> EvolvePlan {
    let initial = gen::scale_free(cfg.nodes, cfg.edges, 2.0, cfg.seed);
    let mut rng = Pcg64::new(cfg.seed, 0xe701e);

    // Event times: regular updates spread over the horizon, a faulted
    // batch at 45%, and the storm crammed into [60%, 62%].
    let mut times: Vec<(f64, bool)> = (0..cfg.updates)
        .map(|i| (cfg.duration_s * (i + 1) as f64 / (cfg.updates + 2) as f64, false))
        .collect();
    // The fault storm: consecutive corrupted batches at 45%, spaced so
    // tightly that nothing else can land between them — every one must
    // roll back with the served epoch frozen across the whole storm.
    for j in 0..cfg.fault_storm.max(1) {
        times.push((cfg.duration_s * 0.45 + 1e-9 + j as f64 * 1e-8, true));
    }
    for j in 0..cfg.storm {
        // Offset so storm times never tie with the regular cadence —
        // schedule times stay strictly increasing.
        times.push((cfg.duration_s * (0.6005 + 0.02 * j as f64 / cfg.storm.max(1) as f64), false));
    }
    times.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut truth = initial.clone();
    let mut snapshots = vec![initial.clone()];
    let mut schedule = Vec::new();
    let (mut value_only, mut structural) = (0u64, 0u64);
    for (i, &(at_s, faulted)) in times.iter().enumerate() {
        let batch = if faulted || i % 2 == 0 {
            value_only_batch(&truth, &mut rng, 6)
        } else {
            structural_batch(&truth, &mut rng, 5, 2)
        };
        let fault = faulted.then_some(UpdateFault { delta_index: 0, bit: 9 });
        if faulted {
            // Rolls back: the truth chain does not advance.
        } else {
            match classify(&truth, &batch) {
                DeltaClass::ValueOnly => value_only += 1,
                DeltaClass::Structural => structural += 1,
            }
            truth = apply_to_csr(&truth, &batch).expect("schedule batch applies");
            snapshots.push(truth.clone());
        }
        schedule.push((ScheduledUpdate { at_s, matrix, batch, fault }, faulted));
    }
    EvolvePlan {
        initial,
        schedule,
        snapshots,
        expected_value_only: value_only,
        expected_structural: structural,
    }
}

/// Per-row oracle tolerance for f16 tensor-core accumulation (mirrors
/// the traffic engine's bound).
pub(crate) fn oracle_tol(csr: &Csr, row: usize, oracle: f64) -> f64 {
    let row_nnz = (csr.row_ptr[row + 1] - csr.row_ptr[row]) as f64;
    (2.0f64.powi(-10) * 3.0 * row_nnz.max(1.0) + 1e-4) * oracle.abs().max(1.0)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shard_devices: 4,
        default_deadline_s: 1e-3,
        overload: OverloadConfig { target_p99_s: 8e-4, ..OverloadConfig::on() },
        ..ServeConfig::default()
    }
}

fn evolve_config() -> EvolveConfig {
    // A low threshold so the storm's structural batches trigger at least
    // one (bit-identity-verified) compaction; audit on so every commit
    // proves the incremental checksum repair equals a full recompute.
    EvolveConfig { side_capacity: 256, compact_threshold: 4, audit: true }
}

/// Closed-loop capacity of one server on the initial matrix, so the
/// open-loop rate can be expressed as a load fraction.
fn calibrate_rps(gpu: &GpuConfig, initial: &Csr) -> f64 {
    let mut server = SpmvServer::new(Gpu::new(gpu.clone()), serve_config());
    let h = server.register(initial).expect("calibration matrix registers");
    let t0 = server.clock_s();
    let n = 16;
    for i in 0..n {
        server
            .serve(Request { matrix: h, x: traffic_x(initial.ncols, i), deadline_s: None })
            .expect("calibration request serves");
    }
    n as f64 / (server.clock_s() - t0)
}

/// Runs the scenario and assembles the verdict.
pub fn run_evolve(gpu: &GpuConfig, cfg: &EvolveScenario) -> EvolveReport {
    let mut server = SpmvServer::new(Gpu::new(gpu.clone()), serve_config());
    // Register a probe first so the evolving matrix is not handle 0 —
    // catches handle/index mixups in the epoch plumbing.
    let probe = gen::random_uniform(64, 64, 400, cfg.seed + 1);
    server.register(&probe).expect("probe registers");
    let seed_matrix = gen::scale_free(cfg.nodes, cfg.edges, 2.0, cfg.seed);
    let matrix =
        server.register_evolving(&seed_matrix, evolve_config()).expect("evolving matrix registers");
    let plan = build_plan(cfg, matrix);

    // Open-loop Poisson arrivals at `load` x calibrated capacity.
    let rate = cfg.load * calibrate_rps(gpu, &plan.initial);
    let mut arr_rng = Pcg64::new(cfg.seed, 0xa117);
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    let mut i = 0usize;
    loop {
        t += -arr_rng.range_f32(1e-9, 1.0).ln() as f64 / rate;
        if t >= cfg.duration_s {
            break;
        }
        arrivals.push(OpenRequest {
            request: Request {
                matrix,
                x: traffic_x(cfg.nodes, i),
                deadline_s: Some(1e-3),
            },
            priority: Priority::Normal,
            arrival_s: t,
        });
        i += 1;
    }

    let updates: Vec<ScheduledUpdate> = plan.schedule.iter().map(|(u, _)| u.clone()).collect();
    let (outcomes, update_results) = server.run_open_loop_evolving(arrivals, updates);

    let rows: Vec<UpdateRow> = plan
        .schedule
        .iter()
        .zip(&update_results)
        .map(|((u, faulted), r)| UpdateRow {
            at_s: u.at_s,
            class: classify_row(&plan, u),
            faulted: *faulted,
            outcome: r.clone(),
        })
        .collect();

    let mut checks = Vec::new();

    // 1. Rollback storm: every one of the N consecutive faulted batches
    // failed with the typed verification error, none was ever published,
    // and the served epoch was frozen across the whole storm (no clean
    // batch interleaves with the faulted run).
    let storm_n = cfg.fault_storm.max(1);
    let rollbacks: Vec<&ServeError> =
        update_results.iter().filter_map(|r| r.as_ref().err()).collect();
    let typed = rollbacks.len() == storm_n
        && rollbacks
            .iter()
            .all(|e| matches!(e, ServeError::Update(UpdateError::VerificationFailed { .. })));
    let faulted_idx: Vec<usize> = plan
        .schedule
        .iter()
        .enumerate()
        .filter_map(|(i, (_, f))| f.then_some(i))
        .collect();
    let consecutive = faulted_idx.windows(2).all(|w| w[1] == w[0] + 1);
    let stats = server.evolve_stats(matrix).expect("evolving matrix has stats");
    checks.push(Check {
        name: "fault storm: every injected batch rolls back",
        pass: typed && consecutive && stats.rollbacks == storm_n as u64,
        detail: format!(
            "{} consecutive fault(s), {} rollback(s): {rollbacks:?}",
            storm_n,
            rollbacks.len()
        ),
    });

    // 2. Every non-faulted batch committed; the published epoch equals
    // the snapshot chain's head (no unverified epoch exists).
    let committed = update_results.iter().filter(|r| r.is_ok()).count();
    let epoch = server.epoch(matrix).expect("evolving matrix has an epoch");
    checks.push(Check {
        name: "every clean batch commits a verified epoch",
        pass: committed as u64 == epoch
            && epoch as usize == plan.snapshots.len() - 1
            && stats.updates == epoch
            && stats.audits == epoch,
        detail: format!(
            "{committed} commits, epoch {epoch}, {} audits, {} snapshots",
            stats.audits,
            plan.snapshots.len()
        ),
    });

    // 3. Compaction happened (the storm's inserts cross the threshold)
    // and was verified bit-identical — a mismatch would have rolled back.
    let compacted = update_results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter(|o| o.report.compacted)
        .count();
    checks.push(Check {
        name: "compactions verified bit-identical to rebuild",
        pass: stats.compactions >= 1 && stats.compactions == compacted as u64,
        detail: format!("{} compaction(s)", stats.compactions),
    });

    // 4. Epoch-exact reads: every outcome carries exactly the epoch
    // committed at its arrival instant, and every served y matches that
    // epoch's f64 oracle — a torn read (mixing epochs) or a stale read
    // (serving an epoch older than admitted) would fail one of these.
    let epoch_at = |t: f64| {
        plan.schedule
            .iter()
            .zip(&update_results)
            .filter(|((u, _), r)| u.at_s <= t && r.is_ok())
            .count() as u64
    };
    let (mut verified, mut wrong_epoch, mut wrong_value) = (0u64, 0u64, 0u64);
    for o in &outcomes {
        if o.epoch != epoch_at(o.arrival_s) {
            wrong_epoch += 1;
        }
        let Ok(ok) = &o.result else { continue };
        let truth = &plan.snapshots[o.epoch as usize];
        let x = traffic_x(cfg.nodes, o.index);
        let oracle = truth.spmv_f64(&x).expect("oracle dims match");
        let bad = ok
            .y
            .iter()
            .zip(&oracle)
            .enumerate()
            .any(|(r, (a, e))| ((*a as f64) - e).abs() > oracle_tol(truth, r, *e));
        if bad {
            wrong_value += 1;
        } else {
            verified += 1;
        }
    }
    checks.push(Check {
        name: "zero torn or stale reads (epoch-exact oracle)",
        pass: wrong_epoch == 0 && wrong_value == 0 && verified > 0,
        detail: format!(
            "{verified} served reads epoch-verified, {wrong_epoch} wrong-epoch, {wrong_value} oracle mismatches"
        ),
    });

    // 5. Plan-cache behaviour: value-only commits re-slice the partition
    // plan, structural commits rebuild it; the class ledger agrees with
    // the evolve layer's counters.
    let resliced =
        update_results.iter().filter_map(|r| r.as_ref().ok()).filter(|o| o.partition_resliced).count();
    let repartitioned =
        update_results.iter().filter_map(|r| r.as_ref().ok()).filter(|o| o.repartitioned).count();
    checks.push(Check {
        name: "plan survives value-only, rebuilt on structural",
        pass: resliced as u64 == plan.expected_value_only
            && repartitioned as u64 == plan.expected_structural
            && stats.value_only_batches == plan.expected_value_only
            && stats.structural_batches == plan.expected_structural,
        detail: format!(
            "{resliced} resliced / {repartitioned} repartitioned vs {} value-only / {} structural",
            plan.expected_value_only, plan.expected_structural
        ),
    });

    // 6. Availability through the storm: no window dips below the bar.
    let windows = window_stats(&outcomes, cfg.duration_s, cfg.windows);
    let min_avail = windows.iter().map(|w| w.availability).fold(1.0, f64::min);
    let offered = outcomes.len() as u64;
    let served = outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
    checks.push(Check {
        name: "availability holds through the update storm",
        pass: min_avail >= 0.9 && offered > 20,
        detail: format!(
            "min window availability {min_avail:.3} over {} windows, {served}/{offered} served",
            windows.len()
        ),
    });

    // 7. Incremental repair == full recompute, shown standalone: replay
    // the committed batches through an un-audited EvolvingMatrix and
    // compare its incrementally repaired checksums `==` (f64-exact)
    // against from-scratch builds of the final state.
    let incremental_exact = {
        let mut ev = EvolvingMatrix::new(
            plan.initial.clone(),
            EvolveConfig { audit: false, ..evolve_config() },
        );
        let mut touched_total = 0usize;
        for ((u, faulted), _) in plan.schedule.iter().zip(&update_results) {
            if *faulted {
                continue;
            }
            touched_total += ev.apply(&u.batch, None).expect("replay commits").touched_block_rows;
        }
        let exact = *ev.logical_sums() == AbftChecksums::build_logical(ev.delta())
            && *ev.base_sums() == AbftChecksums::build(ev.base());
        (exact, touched_total, ev.base().block_rows * committed)
    };
    checks.push(Check {
        name: "incremental ABFT repair exactly equals full recompute",
        pass: incremental_exact.0,
        detail: format!(
            "repaired {} block-rows where full recompute re-sums {}",
            incremental_exact.1, incremental_exact.2
        ),
    });

    // 8. The workload is a live graph: PageRank converges on both the
    // initial and the final adjacency, and the ranks actually moved.
    let gpu_dev = Gpu::new(gpu.clone());
    let before = pagerank(
        &gpu_dev,
        &Graph::from_adjacency(plan.initial.clone()).expect("square adjacency"),
        0.85,
        1e-5,
        80,
    );
    let after = pagerank(
        &gpu_dev,
        &Graph::from_adjacency(plan.snapshots.last().expect("chain non-empty").clone())
            .expect("square adjacency"),
        0.85,
        1e-5,
        80,
    );
    let shift: f32 =
        before.values.iter().zip(&after.values).map(|(a, b)| (a - b).abs()).sum();
    checks.push(Check {
        name: "pagerank converges before and after evolution",
        pass: before.iterations < 80 && after.iterations < 80 && shift > 0.0,
        detail: format!(
            "{} -> {} iterations, rank L1 shift {shift:.4}",
            before.iterations, after.iterations
        ),
    });

    EvolveReport {
        updates: rows,
        availability: if offered == 0 { 1.0 } else { served as f64 / offered as f64 },
        min_window_availability: min_avail,
        verified_reads: verified,
        checks,
    }
}

/// Recovers a schedule entry's class against its pre-update snapshot.
fn classify_row(plan: &EvolvePlan, u: &ScheduledUpdate) -> DeltaClass {
    // Walk the chain: the truth a batch saw is the snapshot at the count
    // of committed batches scheduled strictly before it.
    let mut epoch = 0usize;
    for (s, faulted) in &plan.schedule {
        if s.at_s >= u.at_s {
            break;
        }
        if !*faulted {
            epoch += 1;
        }
    }
    classify(&plan.snapshots[epoch.min(plan.snapshots.len() - 1)], &u.batch)
}

/// Runs the scenario on `gpu` and renders the update ledger, the
/// serving-during-updates window curve, the verdict checks, and the
/// one-line `EVOLVE` verdict string.
pub fn evolve_report(gpu: &GpuConfig, cfg: &EvolveScenario) -> (Vec<Table>, Verdict, EvolveReport) {
    let report = run_evolve(gpu, cfg);

    let mut ledger = Table::new(
        format!("Streaming update ledger ({})", gpu.name),
        &["t_us", "class", "fault", "outcome", "side Δ", "compact", "touched brs", "plan"],
    );
    for r in &report.updates {
        let (outcome, side, compact, touched, plan) = match &r.outcome {
            Ok(o) => (
                format!("epoch {}", o.report.epoch),
                (o.report.apply.side_inserts + o.report.apply.side_updates).to_string(),
                if o.report.compacted { "yes" } else { "-" }.to_string(),
                o.report.touched_block_rows.to_string(),
                if o.partition_resliced {
                    "resliced"
                } else if o.repartitioned {
                    "rebuilt"
                } else {
                    "-"
                }
                .to_string(),
            ),
            Err(e) => (format!("ROLLBACK: {e}"), "-".into(), "-".into(), "-".into(), "-".into()),
        };
        ledger.push_row(vec![
            format!("{:.1}", r.at_s * 1e6),
            format!("{:?}", r.class),
            if r.faulted { "injected" } else { "-" }.to_string(),
            outcome,
            side,
            compact,
            touched,
            plan,
        ]);
    }

    let mut checks = Table::new(
        format!("Evolving-matrix verdict checks ({})", gpu.name),
        &["check", "pass", "evidence"],
    );
    for c in &report.checks {
        checks.push_row(vec![
            c.name.to_string(),
            if c.pass { "yes" } else { "NO" }.to_string(),
            c.detail.clone(),
        ]);
    }

    let verdict = Verdict::new(report.ok(), format!(
        "EVOLVE {}: {} epochs committed, {} reads epoch-verified, min window availability {:.3}, {}/{} checks passed",
        if report.ok() { "OK" } else { "FAIL" },
        report.updates.iter().filter(|r| r.outcome.is_ok()).count(),
        report.verified_reads,
        report.min_window_availability,
        report.checks.iter().filter(|c| c.pass).count(),
        report.checks.len(),
    ));
    (vec![ledger, checks], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spaden_serve::Rung;

    #[test]
    fn smoke_scenario_passes_every_check() {
        let (tables, verdict, report) = evolve_report(&GpuConfig::l40(), &EvolveScenario::smoke());
        assert!(report.ok(), "checks: {:#?}", report.checks);
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("EVOLVE OK"), "{verdict}");
        assert_eq!(tables.len(), 2);
        let ledger = tables[0].to_string();
        assert!(ledger.contains("ROLLBACK"), "{ledger}");
        assert!(ledger.contains("resliced"), "{ledger}");
        assert!(ledger.contains("rebuilt"), "{ledger}");
    }

    #[test]
    fn runs_are_deterministic() {
        let gpu = GpuConfig::l40();
        let cfg = EvolveScenario::smoke();
        let (_, a, ra) = evolve_report(&gpu, &cfg);
        let (_, b, rb) = evolve_report(&gpu, &cfg);
        assert_eq!(a, b);
        assert_eq!(ra.verified_reads, rb.verified_reads);
        assert_eq!(ra.min_window_availability, rb.min_window_availability);
    }

    #[test]
    fn served_rungs_include_the_fleet_until_an_update_lands() {
        // Sanity on the scenario's fixture: the sharded rung actually
        // participates (the epoch gate falls back, not locks out).
        let gpu = GpuConfig::l40();
        let cfg = EvolveScenario::smoke();
        let mut server = SpmvServer::new(Gpu::new(gpu.clone()), serve_config());
        server.register(&gen::random_uniform(64, 64, 400, cfg.seed + 1)).unwrap();
        let m = gen::scale_free(cfg.nodes, cfg.edges, 2.0, cfg.seed);
        let h = server.register_evolving(&m, evolve_config()).unwrap();
        let ok = server
            .serve(Request { matrix: h, x: traffic_x(cfg.nodes, 0), deadline_s: None })
            .unwrap();
        assert_eq!(ok.rung, Rung::Sharded);
        assert_eq!(ok.epoch, 0);
    }
}
