//! # spaden-bench
//!
//! Experiment harness regenerating every table and figure of the Spaden
//! paper's evaluation (§5). The `repro` binary drives it:
//!
//! ```text
//! cargo run --release -p spaden-bench --bin repro -- all --scale 0.05
//! cargo run --release -p spaden-bench --bin repro -- fig6 --gpu v100
//! cargo run --release -p spaden-bench --bin repro -- table1 --scale 1.0
//! ```
//!
//! Every experiment verifies each engine's output against an `f64` CPU
//! oracle while measuring, so a table is also an end-to-end correctness
//! run.

pub mod batching;
pub mod bench9;
pub mod chaos10;
pub mod evolve;
pub mod experiments;
pub mod harness;
pub mod planning;
pub mod recover;
pub mod registry;
pub mod sanitize;
pub mod serving;
pub mod sharding;
pub mod table;
pub mod traffic;
pub mod verdict;

pub use batching::{batch_report, run_batch_bench, BatchBenchConfig, BatchPoint, BatchReport};
pub use bench9::{
    bench_summary_json, bench_summary_tables, run_bench_summary, BenchSummary, EngineGflops,
};
pub use chaos10::chaos_report;
pub use evolve::{evolve_report, run_evolve, EvolveReport, EvolveScenario};
pub use experiments::*;
pub use harness::BenchGroup;
pub use planning::{plan_corpus, plan_report, PlanReport};
pub use recover::{recover_report, recover_report_json, run_recover, RecoverReport, RecoverScenario};
pub use registry::{build_engine, EngineKind, FIG6_ENGINES, FIG8_ENGINES};
pub use sanitize::{sanitize_report, SanitizeReport};
pub use serving::serve_report;
pub use sharding::shard_report;
pub use table::Table;
pub use traffic::traffic_report;
pub use verdict::Verdict;

use spaden_sparse::datasets::{Dataset, ALL_DATASETS};

/// Deterministic input vector: bounded, irregular, sign-mixed — enough to
/// catch indexing bugs while keeping f16 accumulation well-conditioned.
pub fn make_x(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 37 + 11) % 64) as f32 / 32.0 - 1.0).collect()
}

/// Generates the Table-1 datasets at `scale` (all 14, or only the 12
/// in-scope ones).
pub fn load_datasets(scale: f64, include_out_of_scope: bool) -> Vec<Dataset> {
    ALL_DATASETS
        .iter()
        .filter(|d| include_out_of_scope || d.in_scope)
        .map(|d| d.generate(scale))
        .collect()
}

/// Geometric mean of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        debug_assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Maximum relative error of `y` against the oracle, with an absolute
/// floor for near-zero entries.
pub fn max_rel_error(y: &[f32], oracle: &[f64]) -> f64 {
    y.iter()
        .zip(oracle)
        .map(|(a, o)| (*a as f64 - o).abs() / o.abs().max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn x_vector_is_bounded_and_mixed() {
        let x = make_x(1000);
        assert!(x.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(x.iter().any(|&v| v < 0.0) && x.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn max_rel_error_detects_mismatch() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = max_rel_error(&[1.0, 3.0], &[1.0, 2.0]);
        assert!((e - 0.5).abs() < 1e-9);
    }

    #[test]
    fn load_datasets_scales() {
        let ds = load_datasets(0.01, false);
        assert_eq!(ds.len(), 12);
        let all = load_datasets(0.01, true);
        assert_eq!(all.len(), 14);
        assert!(all.iter().all(|d| d.csr.nrows >= 64));
    }
}
