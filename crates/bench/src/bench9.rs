//! The `repro bench` experiment: a machine-readable performance summary
//! of the whole stack, written to `BENCH_10.json`.
//!
//! One JSON document captures the numbers a regression dashboard would
//! track: per-engine geomean GFLOPS on the in-scope Table-1 corpus, SpMM
//! throughput as a function of batch width K (the amortisation curve the
//! batching window exploits), served-traffic p50/p99 under light load,
//! the plan cache's repeat hit rate, measured host-side conversion cost
//! per nonzero for each format, and the simulator's own wall-clock per
//! simulated SpMV (the number that bounds how much traffic any
//! experiment can afford to push through the stack).

use crate::{geomean, load_datasets, make_x, run_sweep, Table};
use spaden::{BitBsr, SpadenEngine, SpadenSpmmEngine, SpmvEngine};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_plan::{PlanSource, Planner};
use spaden_sparse::bsr::Bsr;
use spaden_sparse::dense::Dense;
use spaden_sparse::ell::Ell;
use spaden_sparse::hyb::Hyb;
use spaden_traffic::{calibrate_capacity_rps, run_traffic, ArrivalProcess, TrafficConfig};

/// Batch widths of the SpMM amortisation curve.
pub const SPMM_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// One engine's corpus-level throughput.
#[derive(Debug, Clone)]
pub struct EngineGflops {
    /// Engine display name.
    pub engine: &'static str,
    /// Geomean modelled GFLOP/s over the in-scope corpus.
    pub gflops: f64,
}

/// One format's measured host-side conversion cost on the probe matrix.
#[derive(Debug, Clone)]
pub struct ConversionCost {
    /// Conversion target (the on-device format built from CSR).
    pub target: &'static str,
    /// Best-of-five wall nanoseconds per nonzero.
    pub ns_per_nnz: f64,
}

/// Host wall-clock cost of the simulator itself: how long one simulated
/// SpMV takes in real time, and how that compares to the simulated
/// duration it models.
#[derive(Debug, Clone)]
pub struct SimWallClock {
    /// Timed SpMV launches.
    pub runs: usize,
    /// Mean host wall microseconds per simulated launch.
    pub wall_us_per_run: f64,
    /// Mean modelled (simulated) microseconds per launch.
    pub sim_us_per_run: f64,
    /// Slowdown: host wall time per unit of simulated time.
    pub wall_per_sim: f64,
}

/// Everything `repro bench` measures.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Per-engine geomean GFLOPS on the in-scope Table-1 corpus.
    pub engines: Vec<EngineGflops>,
    /// Geomean SpMM GFLOPS at each width in [`SPMM_WIDTHS`].
    pub spmm_gflops: Vec<(usize, f64)>,
    /// Served-traffic p50 time-in-system (seconds) under light load.
    pub serve_p50_s: f64,
    /// Served-traffic p99 time-in-system (seconds) under light load.
    pub serve_p99_s: f64,
    /// Plan-cache hit rate on a repeat pass over the corpus.
    pub plan_repeat_hit_rate: f64,
    /// Measured conversion cost per format on the probe matrix.
    pub conversions: Vec<ConversionCost>,
    /// Simulator wall-clock per simulated SpMV on the probe matrix.
    pub sim_wall: SimWallClock,
}

/// Best-of-five wall nanoseconds of `f` (one warmup call first).
fn best_ns(mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs the summary measurements on `gpu`.
pub fn run_bench_summary(gpu: &GpuConfig, scale: f64, seed: u64) -> BenchSummary {
    let datasets = load_datasets(scale, false);

    // Per-engine geomean GFLOPS over the Figure-6 engine set.
    let sweep = run_sweep(gpu.clone(), &datasets, &crate::registry::FIG6_ENGINES);
    let mut engines: Vec<EngineGflops> = Vec::new();
    for c in &sweep.cells {
        if !engines.iter().any(|e| e.engine == c.engine) {
            let vals =
                sweep.cells.iter().filter(|x| x.engine == c.engine && x.in_scope).map(|x| x.gflops);
            engines.push(EngineGflops { engine: c.engine, gflops: geomean(vals) });
        }
    }

    // SpMM amortisation curve: geomean GFLOPS per width over the corpus.
    let spmm_gflops = SPMM_WIDTHS
        .iter()
        .map(|&k| {
            let vals = datasets.iter().map(|ds| {
                let dev = Gpu::new(gpu.clone());
                let eng = SpadenSpmmEngine::prepare(&dev, &ds.csr);
                let b =
                    Dense::from_fn(ds.csr.ncols, k, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0);
                eng.run(&dev, &b).gflops(ds.csr.nnz(), k)
            });
            (k, geomean(vals))
        })
        .collect();

    // Serving latency under light load (half of closed-loop capacity).
    let probe = TrafficConfig::new(seed, 2e-3, ArrivalProcess::Poisson { rate_rps: 1.0 });
    let cap = calibrate_capacity_rps(gpu, &probe);
    let summary = run_traffic(
        gpu,
        &TrafficConfig::new(seed, 2e-3, ArrivalProcess::Poisson { rate_rps: 0.5 * cap }),
    );
    let lanes: Vec<(f64, f64, u64)> = summary
        .p50_s
        .iter()
        .zip(&summary.p99_s)
        .zip(&summary.served_by)
        .map(|((&p50, &p99), &n)| (p50, p99, n))
        .filter(|&(_, _, n)| n > 0)
        .collect();
    let serve_p50_s = lanes.iter().map(|&(p, _, _)| p).fold(0.0, f64::max);
    let serve_p99_s = lanes.iter().map(|&(_, p, _)| p).fold(0.0, f64::max);

    // Plan cache: populate on pass 1, measure hits on pass 2.
    let dev = Gpu::new(gpu.clone());
    let mut planner = Planner::with_all_engines(u64::MAX);
    let (mut repeats, mut hits) = (0usize, 0usize);
    for pass in 0..2 {
        for ds in &datasets {
            if let Ok((_, src)) = planner.plan_traced(&dev, &ds.csr) {
                if pass == 1 {
                    repeats += 1;
                    if src == PlanSource::CacheHit {
                        hits += 1;
                    }
                }
            }
        }
    }
    let plan_repeat_hit_rate = hits as f64 / repeats.max(1) as f64;

    // Host-side conversion cost per nonzero, on the corpus's probe
    // matrix (the same one the conversions micro-bench uses).
    let probe_csr = spaden_sparse::datasets::by_name("cant")
        .expect("probe dataset")
        .generate(scale)
        .csr;
    let probe_nnz = probe_csr.nnz().max(1) as f64;
    let conversions = vec![
        ConversionCost {
            target: "bitBSR",
            ns_per_nnz: best_ns(|| {
                std::hint::black_box(BitBsr::from_csr(std::hint::black_box(&probe_csr)));
            }) / probe_nnz,
        },
        ConversionCost {
            target: "BSR",
            ns_per_nnz: best_ns(|| {
                std::hint::black_box(Bsr::from_csr(std::hint::black_box(&probe_csr)));
            }) / probe_nnz,
        },
        ConversionCost {
            target: "ELL",
            ns_per_nnz: best_ns(|| {
                std::hint::black_box(Ell::from_csr(std::hint::black_box(&probe_csr)));
            }) / probe_nnz,
        },
        ConversionCost {
            target: "HYB",
            ns_per_nnz: best_ns(|| {
                std::hint::black_box(Hyb::from_csr(std::hint::black_box(&probe_csr)));
            }) / probe_nnz,
        },
    ];

    // Simulator wall-clock: host time per simulated SpMV vs the
    // simulated duration it models.
    let eng = SpadenEngine::prepare(&dev, &probe_csr);
    let x = make_x(probe_csr.ncols);
    let runs = 16usize;
    let mut sim_s = 0.0;
    let t0 = std::time::Instant::now();
    for _ in 0..runs {
        sim_s += std::hint::black_box(eng.run(&dev, std::hint::black_box(&x))).time.seconds;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sim_wall = SimWallClock {
        runs,
        wall_us_per_run: wall_s * 1e6 / runs as f64,
        sim_us_per_run: sim_s * 1e6 / runs as f64,
        wall_per_sim: wall_s / sim_s.max(1e-12),
    };

    BenchSummary {
        engines,
        spmm_gflops,
        serve_p50_s,
        serve_p99_s,
        plan_repeat_hit_rate,
        conversions,
        sim_wall,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the `BENCH_10.json` body.
pub fn bench_summary_json(gpu: &GpuConfig, scale: f64, seed: u64, s: &BenchSummary) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"gpu\": {},\n  \"scale\": {scale},\n  \"seed\": {seed},\n",
        json_str(gpu.name)
    ));
    out.push_str("  \"engine_gflops\": {\n");
    for (i, e) in s.engines.iter().enumerate() {
        out.push_str(&format!(
            "    {}: {:.3}{}\n",
            json_str(e.engine),
            e.gflops,
            if i + 1 < s.engines.len() { "," } else { "" },
        ));
    }
    out.push_str("  },\n  \"spmm_gflops_by_width\": {\n");
    for (i, (k, g)) in s.spmm_gflops.iter().enumerate() {
        out.push_str(&format!(
            "    \"{k}\": {:.3}{}\n",
            g,
            if i + 1 < s.spmm_gflops.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"serve_p50_us\": {:.2},\n  \"serve_p99_us\": {:.2},\n  \"plan_cache_repeat_hit_rate\": {:.4},\n",
        s.serve_p50_s * 1e6,
        s.serve_p99_s * 1e6,
        s.plan_repeat_hit_rate,
    ));
    out.push_str("  \"conversion_ns_per_nnz\": {\n");
    for (i, c) in s.conversions.iter().enumerate() {
        out.push_str(&format!(
            "    {}: {:.3}{}\n",
            json_str(c.target),
            c.ns_per_nnz,
            if i + 1 < s.conversions.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"simulator_wall_clock\": {{\n    \"spmv_runs\": {},\n    \"wall_us_per_run\": {:.3},\n    \"sim_us_per_run\": {:.3},\n    \"wall_per_sim\": {:.2}\n  }}\n}}\n",
        s.sim_wall.runs,
        s.sim_wall.wall_us_per_run,
        s.sim_wall.sim_us_per_run,
        s.sim_wall.wall_per_sim,
    ));
    out
}

/// Renders the human-readable tables shown alongside the JSON.
pub fn bench_summary_tables(gpu: &GpuConfig, s: &BenchSummary) -> Vec<Table> {
    let mut engines =
        Table::new(format!("Corpus geomean GFLOPS ({})", gpu.name), &["engine", "GFLOPS"]);
    for e in &s.engines {
        engines.push_row(vec![e.engine.to_string(), Table::num(e.gflops)]);
    }
    let mut spmm = Table::new(
        format!("SpMM amortisation curve ({})", gpu.name),
        &["K", "GFLOPS", "vs K=1"],
    );
    let base = s.spmm_gflops.first().map_or(1.0, |&(_, g)| g).max(1e-12);
    for &(k, g) in &s.spmm_gflops {
        spmm.push_row(vec![k.to_string(), Table::num(g), format!("{:.2}x", g / base)]);
    }
    let mut summary = Table::new(
        format!("Serving and planning summary ({})", gpu.name),
        &["metric", "value"],
    );
    summary.push_row(vec!["serve p50".into(), format!("{:.1} us", s.serve_p50_s * 1e6)]);
    summary.push_row(vec!["serve p99".into(), format!("{:.1} us", s.serve_p99_s * 1e6)]);
    summary.push_row(vec![
        "plan cache repeat hit rate".into(),
        format!("{:.0}%", s.plan_repeat_hit_rate * 100.0),
    ]);
    let mut conv = Table::new(
        format!("Conversion cost, CSR -> format ({})", gpu.name),
        &["target", "ns/nnz"],
    );
    for c in &s.conversions {
        conv.push_row(vec![c.target.to_string(), format!("{:.2}", c.ns_per_nnz)]);
    }
    let mut sim = Table::new(
        format!("Simulator wall-clock ({})", gpu.name),
        &["metric", "value"],
    );
    sim.push_row(vec!["SpMV launches timed".into(), s.sim_wall.runs.to_string()]);
    sim.push_row(vec![
        "host wall per launch".into(),
        format!("{:.1} us", s.sim_wall.wall_us_per_run),
    ]);
    sim.push_row(vec![
        "simulated time per launch".into(),
        format!("{:.1} us", s.sim_wall.sim_us_per_run),
    ]);
    sim.push_row(vec!["wall / simulated".into(), format!("{:.2}x", s.sim_wall.wall_per_sim)]);
    vec![engines, spmm, summary, conv, sim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_measures_every_section_and_renders_valid_json() {
        let gpu = GpuConfig::l40();
        let s = run_bench_summary(&gpu, 0.02, 11);
        assert!(!s.engines.is_empty());
        assert!(s.engines.iter().any(|e| e.engine == "Spaden" && e.gflops > 0.0));
        assert_eq!(s.spmm_gflops.len(), SPMM_WIDTHS.len());
        // The amortisation curve must rise with width: K=16 beats K=1.
        let g1 = s.spmm_gflops[0].1;
        let g16 = s.spmm_gflops.last().unwrap().1;
        assert!(g16 > g1, "SpMM must amortise: K=1 {g1} vs K=16 {g16}");
        assert!(s.serve_p99_s >= s.serve_p50_s);
        assert!(s.serve_p50_s > 0.0);
        assert!((s.plan_repeat_hit_rate - 1.0).abs() < 1e-12, "unbounded budget repeats all hit");
        let json = bench_summary_json(&gpu, 0.02, 11, &s);
        assert!(json.contains("\"engine_gflops\""));
        assert!(json.contains("\"spmm_gflops_by_width\""));
        assert!(json.contains("\"16\":"));
        assert!(json.contains("\"plan_cache_repeat_hit_rate\""));
        assert!(json.contains("\"conversion_ns_per_nnz\""));
        assert!(json.contains("\"simulator_wall_clock\""));
        assert_eq!(s.conversions.len(), 4);
        assert!(s.conversions.iter().all(|c| c.ns_per_nnz > 0.0));
        assert!(s.sim_wall.wall_us_per_run > 0.0);
        assert!(s.sim_wall.sim_us_per_run > 0.0);
        // Structural sanity: braces balance and no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }"));
        assert_eq!(bench_summary_tables(&gpu, &s).len(), 5);
    }
}
