//! Experiment runners: one function per table/figure of the paper.
//!
//! Every runner verifies engine outputs against the `f64` CPU oracle while
//! measuring, so regenerating a figure is also an end-to-end correctness
//! check of the whole stack.

use crate::registry::EngineKind;
use crate::table::Table;
use crate::{geomean, make_x, max_rel_error};
use spaden::BitBsr;
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::datasets::Dataset;
use spaden_sparse::stats::block_profile;

/// Result of one (engine, dataset) measurement.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Engine display name.
    pub engine: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Whether the dataset meets the paper's selection criteria.
    pub in_scope: bool,
    /// Modelled GFLOP/s (2·nnz / time).
    pub gflops: f64,
    /// Modelled kernel seconds.
    pub seconds: f64,
    /// Bottleneck pipe name from the timing model.
    pub bottleneck: &'static str,
    /// Max relative error vs the f64 oracle.
    pub max_err: f64,
    /// Conversion time, ns per nonzero.
    pub prep_ns_per_nnz: f64,
    /// Device footprint, bytes per nonzero.
    pub prep_bytes_per_nnz: f64,
    /// Conversion wall time in seconds.
    pub prep_seconds: f64,
    /// Device footprint in bytes.
    pub prep_bytes: u64,
    /// Matrix nonzeros.
    pub nnz: usize,
    /// Sparse-block ratio of the matrix (Figure 9 x-axis).
    pub sparse_ratio: f64,
}

/// A full engines × datasets sweep on one GPU.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// GPU display name.
    pub gpu: &'static str,
    /// All measurements.
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// The cell for (engine, dataset), if measured.
    pub fn get(&self, engine: &str, dataset: &str) -> Option<&SweepCell> {
        self.cells.iter().find(|c| c.engine == engine && c.dataset == dataset)
    }

    /// Dataset names in measurement order.
    pub fn datasets(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.dataset) {
                seen.push(c.dataset);
            }
        }
        seen
    }

    /// Geometric-mean speedup of `engine_a` over `engine_b` across the
    /// in-scope datasets (the paper's headline numbers).
    pub fn geomean_speedup(&self, engine_a: &str, engine_b: &str) -> f64 {
        let ratios: Vec<f64> = self
            .datasets()
            .into_iter()
            .filter_map(|d| {
                let a = self.get(engine_a, d)?;
                let b = self.get(engine_b, d)?;
                a.in_scope.then_some(b.seconds / a.seconds)
            })
            .collect();
        geomean(ratios)
    }
}

/// Runs `kinds` × `datasets` on a GPU configuration, verifying every
/// output against the CPU oracle. A cell whose engine fails to prepare or
/// run is reported to stderr with its typed [`spaden::EngineError`] and
/// skipped, so one bad matrix cannot unwind the whole sweep.
pub fn run_sweep(config: GpuConfig, datasets: &[Dataset], kinds: &[EngineKind]) -> Sweep {
    let gpu_name = config.name;
    let mut cells = Vec::with_capacity(datasets.len() * kinds.len());
    for ds in datasets {
        let gpu = Gpu::new(config.clone());
        let x = make_x(ds.csr.ncols);
        let oracle = ds.csr.spmv_f64(&x).expect("oracle SpMV");
        let profile = block_profile(&ds.csr);
        for &kind in kinds {
            let engine = match crate::registry::try_build_engine(kind, &gpu, &ds.csr) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("sweep: {} on {}: prepare failed: {e}", kind.name(), ds.spec.name);
                    continue;
                }
            };
            let run = match engine.try_run(&gpu, &x) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("sweep: {} on {}: run failed: {e}", kind.name(), ds.spec.name);
                    continue;
                }
            };
            let prep = engine.prep();
            cells.push(SweepCell {
                engine: kind.name(),
                dataset: ds.spec.name,
                in_scope: ds.spec.in_scope,
                gflops: run.gflops(engine.nnz()),
                seconds: run.time.seconds,
                bottleneck: run.time.bottleneck(),
                max_err: max_rel_error(&run.y, &oracle),
                prep_ns_per_nnz: prep.ns_per_nnz(engine.nnz()),
                prep_bytes_per_nnz: prep.bytes_per_nnz(engine.nnz()),
                prep_seconds: prep.seconds,
                prep_bytes: prep.device_bytes,
                nnz: engine.nnz(),
                sparse_ratio: profile.sparse_ratio(),
            });
        }
    }
    Sweep { gpu: gpu_name, cells }
}

/// Table 1: dataset statistics, generated vs paper-reported.
pub fn table1(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 1: matrix dataset information (generated vs paper)",
        &["Matrix", "nrow", "nnz", "Bnrow", "Bnnz", "paper nnz", "paper Bnnz", "scale"],
    );
    for ds in datasets {
        let b = BitBsr::from_csr(&ds.csr);
        t.push_row(vec![
            ds.spec.name.into(),
            ds.csr.nrows.to_string(),
            ds.csr.nnz().to_string(),
            b.block_rows.to_string(),
            b.bnnz().to_string(),
            ds.spec.nnz.to_string(),
            ds.spec.bnnz.to_string(),
            format!("{:.3}", ds.scale),
        ]);
    }
    t
}

/// Figure 6: GFLOPS of every method on every matrix (one GPU).
pub fn fig6(sweep: &Sweep) -> Table {
    let engines: Vec<&str> = dedup_engines(sweep);
    let mut headers: Vec<&str> = vec!["Matrix"];
    headers.extend(engines.iter().copied());
    let mut t = Table::new(
        format!("Figure 6: SpMV throughput in GFLOPS ({})", sweep.gpu),
        &headers,
    );
    for d in sweep.datasets() {
        let mut row = vec![d.to_string()];
        for e in &engines {
            row.push(sweep.get(e, d).map_or("-".into(), |c| Table::num(c.gflops)));
        }
        t.push_row(row);
    }
    t
}

/// Figure 7: speedup over cuSPARSE CSR per matrix, plus the geometric-mean
/// summary row over the 12 in-scope matrices (the §5.2 headline).
pub fn fig7(sweep: &Sweep) -> Table {
    let engines: Vec<&str> =
        dedup_engines(sweep).into_iter().filter(|e| *e != "cuSPARSE CSR").collect();
    let mut headers: Vec<&str> = vec!["Matrix"];
    headers.extend(engines.iter().copied());
    let mut t = Table::new(
        format!("Figure 7: speedup over cuSPARSE CSR ({})", sweep.gpu),
        &headers,
    );
    for d in sweep.datasets() {
        let base = match sweep.get("cuSPARSE CSR", d) {
            Some(b) => b.seconds,
            None => continue,
        };
        let mut row = vec![d.to_string()];
        for e in &engines {
            row.push(sweep.get(e, d).map_or("-".into(), |c| Table::num(base / c.seconds)));
        }
        t.push_row(row);
    }
    let mut summary = vec!["geomean (in-scope)".to_string()];
    for e in &engines {
        summary.push(Table::num(sweep.geomean_speedup(e, "cuSPARSE CSR")));
    }
    t.push_row(summary);
    t
}

/// Figure 8: speedup breakdown of Spaden over its ablations (L40 in the
/// paper). Columns are Spaden's speedup over each variant.
pub fn fig8(sweep: &Sweep) -> Table {
    let variants = ["Spaden w/o TC", "cuSPARSE BSR", "CSR Warp16"];
    let mut t = Table::new(
        format!("Figure 8: Spaden speedup breakdown ({})", sweep.gpu),
        &["Matrix", "over w/o TC", "over cuSPARSE BSR", "over CSR Warp16"],
    );
    for d in sweep.datasets() {
        let spaden = match sweep.get("Spaden", d) {
            Some(s) => s.seconds,
            None => continue,
        };
        let mut row = vec![d.to_string()];
        for v in variants {
            row.push(sweep.get(v, d).map_or("-".into(), |c| Table::num(c.seconds / spaden)));
        }
        t.push_row(row);
    }
    let mut summary = vec!["geomean (in-scope)".to_string()];
    for v in variants {
        summary.push(Table::num(sweep.geomean_speedup("Spaden", v)));
    }
    t.push_row(summary);
    t
}

/// Figure 9a: sparse/medium/dense block ratios per matrix.
pub fn fig9a(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Figure 9a: block-type ratio per matrix (8x8 blocks)",
        &["Matrix", "sparse", "medium", "dense", "Bnnz", "mean fill"],
    );
    for ds in datasets {
        let p = block_profile(&ds.csr);
        t.push_row(vec![
            ds.spec.name.into(),
            Table::num(p.sparse_ratio()),
            Table::num(p.medium_ratio()),
            Table::num(p.dense_ratio()),
            p.total().to_string(),
            Table::num(p.mean_fill()),
        ]);
    }
    t
}

/// Figure 9b: matrices sorted by sparse-block ratio against Spaden's
/// speedup over cuSPARSE BSR — the §5.4 correlation.
pub fn fig9b(sweep: &Sweep) -> Table {
    let mut rows: Vec<(&str, f64, f64)> = sweep
        .datasets()
        .into_iter()
        .filter_map(|d| {
            let s = sweep.get("Spaden", d)?;
            let b = sweep.get("cuSPARSE BSR", d)?;
            s.in_scope.then_some((d, s.sparse_ratio, b.seconds / s.seconds))
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"));
    let mut t = Table::new(
        format!("Figure 9b: sparse-block ratio vs Spaden speedup over BSR ({})", sweep.gpu),
        &["Matrix", "sparse ratio", "speedup over BSR"],
    );
    for (d, ratio, speedup) in rows {
        t.push_row(vec![d.to_string(), Table::num(ratio), Table::num(speedup)]);
    }
    t
}

/// Figure 10a: preprocessing time, absolute and per nonzero.
pub fn fig10a(sweep: &Sweep) -> Table {
    let engines = ["cuSPARSE CSR", "cuSPARSE BSR", "Spaden", "DASP"];
    let mut t = Table::new(
        "Figure 10a: preprocessing time (host conversion)",
        &["Matrix", "CSR ms", "BSR ms", "Spaden ms", "DASP ms", "CSR ns/nnz", "BSR ns/nnz", "Spaden ns/nnz", "DASP ns/nnz"],
    );
    for d in sweep.datasets() {
        let mut row = vec![d.to_string()];
        for e in engines {
            row.push(sweep.get(e, d).map_or("-".into(), |c| Table::num(c.prep_seconds * 1e3)));
        }
        for e in engines {
            row.push(sweep.get(e, d).map_or("-".into(), |c| Table::num(c.prep_ns_per_nnz)));
        }
        t.push_row(row);
    }
    let mut summary = vec!["mean ns/nnz (in-scope)".to_string(), "".into(), "".into(), "".into(), "".into()];
    for e in engines {
        summary.push(Table::num(mean_in_scope(sweep, e, |c| c.prep_ns_per_nnz)));
    }
    t.push_row(summary);
    t
}

/// Figure 10b: device memory, absolute and per nonzero.
pub fn fig10b(sweep: &Sweep) -> Table {
    let engines = ["cuSPARSE CSR", "cuSPARSE BSR", "Spaden", "DASP"];
    let mut t = Table::new(
        "Figure 10b: device memory footprint",
        &["Matrix", "CSR MB", "BSR MB", "Spaden MB", "DASP MB", "CSR B/nnz", "BSR B/nnz", "Spaden B/nnz", "DASP B/nnz"],
    );
    for d in sweep.datasets() {
        let mut row = vec![d.to_string()];
        for e in engines {
            row.push(
                sweep
                    .get(e, d)
                    .map_or("-".into(), |c| Table::num(c.prep_bytes as f64 / (1 << 20) as f64)),
            );
        }
        for e in engines {
            row.push(sweep.get(e, d).map_or("-".into(), |c| Table::num(c.prep_bytes_per_nnz)));
        }
        t.push_row(row);
    }
    let mut summary =
        vec!["mean B/nnz (in-scope)".to_string(), "".into(), "".into(), "".into(), "".into()];
    for e in engines {
        summary.push(Table::num(mean_in_scope(sweep, e, |c| c.prep_bytes_per_nnz)));
    }
    t.push_row(summary);
    t
}

/// Ablation study for the design choices of §4.2/§4.3: block size, value
/// precision, fragment packing and fragment I/O path.
pub fn ablations(config: GpuConfig, datasets: &[Dataset]) -> Vec<Table> {
    use spaden::bitbsr::analyze_block_size;
    use spaden::{FragmentIo, Packing, SpadenConfig, SpadenEngine, SpmvEngine};

    let mut size_t = Table::new(
        "Ablation: bitmap block size (format bytes per nnz; paper picks 8x8/u64)",
        &["Matrix", "4x4 (u16)", "8x8 (u64)", "16x16 (4xu64)", "blocks 4", "blocks 8", "blocks 16"],
    );
    let mut prec_t = Table::new(
        "Ablation: value precision in bitBSR (bytes per nnz)",
        &["Matrix", "f16 values", "f32 values", "saving"],
    );
    let mut pack_t = Table::new(
        format!("Ablation: fragment packing ({}; modelled kernel time)", config.name),
        &["Matrix", "diagonal us", "single us", "diagonal speedup", "MMAs diag", "MMAs single"],
    );
    let mut io_t = Table::new(
        format!("Ablation: fragment I/O path ({}; modelled kernel time)", config.name),
        &["Matrix", "direct us", "smem-staged us", "direct speedup"],
    );

    for ds in datasets {
        let nnz = ds.csr.nnz();
        let a4 = analyze_block_size(&ds.csr, 4);
        let a8 = analyze_block_size(&ds.csr, 8);
        let a16 = analyze_block_size(&ds.csr, 16);
        size_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(a4.bytes_per_nnz(nnz)),
            Table::num(a8.bytes_per_nnz(nnz)),
            Table::num(a16.bytes_per_nnz(nnz)),
            a4.blocks.to_string(),
            a8.blocks.to_string(),
            a16.blocks.to_string(),
        ]);

        // f32 values would add 2 bytes per nonzero to the same structure.
        let f16_bpn = a8.bytes_per_nnz(nnz);
        let f32_bpn = (a8.total_bytes + 2 * nnz) as f64 / nnz as f64;
        prec_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(f16_bpn),
            Table::num(f32_bpn),
            format!("{:.2}x", f32_bpn / f16_bpn),
        ]);

        let gpu = Gpu::new(config.clone());
        let x = make_x(ds.csr.ncols);
        let variants = (|| -> Result<_, spaden::EngineError> {
            let diag = SpadenEngine::try_prepare(&gpu, &ds.csr)?;
            let single = SpadenEngine::try_prepare_with(
                &gpu,
                &ds.csr,
                SpadenConfig { packing: Packing::Single, ..Default::default() },
            )?;
            let staged = SpadenEngine::try_prepare_with(
                &gpu,
                &ds.csr,
                SpadenConfig { fragment_io: FragmentIo::SharedMemoryStaged, ..Default::default() },
            )?;
            let rd = diag.try_run(&gpu, &x)?;
            let rs = single.try_run(&gpu, &x)?;
            let rt = staged.try_run(&gpu, &x)?;
            Ok((rd, rs, rt))
        })();
        let (rd, rs, rt) = match variants {
            Ok(v) => v,
            Err(e) => {
                eprintln!("ablations: {}: {e}", ds.spec.name);
                continue;
            }
        };
        pack_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(rd.time.seconds * 1e6),
            Table::num(rs.time.seconds * 1e6),
            format!("{:.2}x", rs.time.seconds / rd.time.seconds),
            rd.counters.mma_m16n16k16.to_string(),
            rs.counters.mma_m16n16k16.to_string(),
        ]);
        io_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(rd.time.seconds * 1e6),
            Table::num(rt.time.seconds * 1e6),
            format!("{:.2}x", rt.time.seconds / rd.time.seconds),
        ]);
    }
    vec![size_t, prec_t, pack_t, io_t]
}

/// Extension study (the paper's §7 future work, implemented): SpMM and
/// SDDMM on bitBSR tensor cores, and the bitCOO variant of the format.
pub fn extensions(config: GpuConfig, datasets: &[Dataset]) -> Vec<Table> {
    use spaden::{BitCooEngine, CsrSpmmEngine, SpadenEngine, SpadenSddmmEngine, SpadenSpmmEngine, SpmvEngine};
    use spaden_sparse::dense::Dense;

    let mut spmm_t = Table::new(
        format!("Extension: SpMM C = A x B_dense ({}; n = 8 and 32)", config.name),
        &["Matrix", "Spaden n=8", "CSR n=8", "Spaden n=32", "CSR n=32", "SpMV GFLOPS"],
    );
    let mut sddmm_t = Table::new(
        format!("Extension: SDDMM pattern ⊙ (X·Yᵀ) ({}; k = 32)", config.name),
        &["Matrix", "GFLOPS", "time us", "MMAs", "bottleneck"],
    );
    let mut bitcoo_t = Table::new(
        format!("Extension: bitCOO vs bitBSR SpMV ({})", config.name),
        &["Matrix", "bitBSR us", "bitCOO us", "bitBSR B/nnz", "bitCOO B/nnz", "atomics"],
    );
    let mut spgemm_t = Table::new(
        format!("Extension: SpGEMM C = A x A ({}; small matrices only)", config.name),
        &["Matrix", "C nnz", "C blocks", "GFLOPS", "time us", "MMAs"],
    );

    for ds in datasets {
        let gpu = Gpu::new(config.clone());
        let nnz = ds.csr.nnz();
        let n_nodes = ds.csr.ncols;

        // SpMM at two widths.
        let spmm = SpadenSpmmEngine::prepare(&gpu, &ds.csr);
        let csr_spmm = CsrSpmmEngine::prepare(&gpu, &ds.csr);
        let mut row = vec![ds.spec.name.to_string()];
        for n in [8usize, 32] {
            let b = Dense::from_fn(n_nodes, n, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0);
            let rs = spmm.run(&gpu, &b);
            let rc = csr_spmm.run(&gpu, &b);
            row.push(Table::num(rs.gflops(nnz, n)));
            row.push(Table::num(rc.gflops(nnz, n)));
        }
        let spmv = SpadenEngine::prepare(&gpu, &ds.csr);
        let x = crate::make_x(n_nodes);
        row.push(Table::num(spmv.run(&gpu, &x).gflops(nnz)));
        spmm_t.push_row(row);

        // SDDMM.
        let k = 32usize;
        let xm = Dense::from_fn(ds.csr.nrows, k, |r, c| ((r * 5 + c) % 7) as f32 * 0.25 - 0.75);
        let ym = Dense::from_fn(ds.csr.ncols, k, |r, c| ((r + 2 * c) % 5) as f32 * 0.5 - 1.0);
        let sddmm = SpadenSddmmEngine::prepare(&gpu, &ds.csr);
        let rs = sddmm.run(&gpu, &xm, &ym);
        sddmm_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(rs.gflops(nnz, k)),
            Table::num(rs.time.seconds * 1e6),
            rs.counters.mma_m16n16k16.to_string(),
            rs.time.bottleneck().to_string(),
        ]);

        // bitCOO.
        let coo_eng = BitCooEngine::prepare(&gpu, &ds.csr);
        let rc = coo_eng.run(&gpu, &x);
        let rb = spmv.run(&gpu, &x);
        bitcoo_t.push_row(vec![
            ds.spec.name.into(),
            Table::num(rb.time.seconds * 1e6),
            Table::num(rc.time.seconds * 1e6),
            Table::num(spmv.prep().bytes_per_nnz(nnz)),
            Table::num(coo_eng.prep().bytes_per_nnz(nnz)),
            rc.counters.atomic_ops.to_string(),
        ]);

        // SpGEMM (A x A): products grow quadratically with blocks per row,
        // so regenerate a small instance of the same structural class.
        let small = ds.spec.generate((0.02f64).min(ds.scale));
        if small.csr.nrows == small.csr.ncols {
            let g2 = Gpu::new(config.clone());
            let eng = spaden::SpadenSpgemmEngine::prepare(&g2, &small.csr, &small.csr);
            let run = eng.run(&g2);
            spgemm_t.push_row(vec![
                ds.spec.name.into(),
                run.c.nnz().to_string(),
                run.c.bnnz().to_string(),
                Table::num(run.gflops()),
                Table::num(run.time.seconds * 1e6),
                run.counters.mma_m16n16k16.to_string(),
            ]);
        }
    }
    vec![spmm_t, sddmm_t, bitcoo_t, spgemm_t]
}

/// Reordering study (§6 related work, applied to bitBSR): how much a
/// symmetric RCM permutation recovers when a matrix arrives badly ordered
/// — block count, block fill, and Spaden throughput before/after.
pub fn reordering(config: GpuConfig, datasets: &[Dataset]) -> Table {
    use spaden::{SpadenEngine, SpmvEngine};
    use spaden_sparse::reorder::{permute_symmetric, rcm_order};
    use spaden_sparse::rng::Pcg64;

    let mut t = Table::new(
        format!(
            "Reordering: scrambled vs RCM-restored bitBSR and Spaden throughput ({})",
            config.name
        ),
        &[
            "Matrix",
            "Bnnz scrambled",
            "Bnnz RCM",
            "fill scrambled",
            "fill RCM",
            "GFLOPS scrambled",
            "GFLOPS RCM",
            "speedup",
        ],
    );
    for ds in datasets {
        if ds.csr.nrows != ds.csr.ncols {
            continue;
        }
        // Scramble with a random relabeling (real matrices arrive with
        // whatever ordering the application produced).
        let mut perm: Vec<u32> = (0..ds.csr.nrows as u32).collect();
        let mut rng = Pcg64::for_dataset(ds.spec.name, 0xbad);
        rng.shuffle(&mut perm);
        let scrambled = permute_symmetric(&ds.csr, &perm);
        let restored = permute_symmetric(&scrambled, &rcm_order(&scrambled));

        let gpu = Gpu::new(config.clone());
        let x = make_x(ds.csr.ncols);
        let pair = (|| -> Result<_, spaden::EngineError> {
            let e1 = SpadenEngine::try_prepare(&gpu, &scrambled)?;
            let e2 = SpadenEngine::try_prepare(&gpu, &restored)?;
            let r1 = e1.try_run(&gpu, &x)?;
            let r2 = e2.try_run(&gpu, &x)?;
            Ok((e1, e2, r1, r2))
        })();
        let (e1, e2, r1, r2) = match pair {
            Ok(v) => v,
            Err(e) => {
                eprintln!("reordering: {}: {e}", ds.spec.name);
                continue;
            }
        };
        let p1 = e1.format().block_profile();
        let p2 = e2.format().block_profile();
        t.push_row(vec![
            ds.spec.name.into(),
            p1.total().to_string(),
            p2.total().to_string(),
            Table::num(p1.mean_fill()),
            Table::num(p2.mean_fill()),
            Table::num(r1.gflops(e1.nnz())),
            Table::num(r2.gflops(e2.nnz())),
            format!("{:.2}x", r1.time.seconds / r2.time.seconds),
        ]);
    }
    t
}

/// Aggregate outcome of a fault-injection sweep cell (or whole sweep).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Plain (unchecked) runs executed.
    pub runs: usize,
    /// Plain runs with at least one injected fault.
    pub faulted: usize,
    /// Plain runs whose output left the f16 equivalence tolerance.
    pub corrupted: usize,
    /// Corrupted runs that ABFT verification flagged.
    pub detected: usize,
    /// Checked runs attempted.
    pub checked: usize,
    /// Checked runs that returned a verified, in-tolerance result.
    pub corrected: usize,
    /// Checked runs that gave up with a typed error (honest degradation).
    pub exhausted: usize,
    /// Checked runs that returned `Ok` with an out-of-tolerance result —
    /// silent corruption through the checked path. Must be zero.
    pub wrong: usize,
}

impl FaultStats {
    fn add(&mut self, o: &FaultStats) {
        self.runs += o.runs;
        self.faulted += o.faulted;
        self.corrupted += o.corrupted;
        self.detected += o.detected;
        self.checked += o.checked;
        self.corrected += o.corrected;
        self.exhausted += o.exhausted;
        self.wrong += o.wrong;
    }
}

/// True if any row of `y` leaves the f16 equivalence tolerance used by the
/// repo's equivalence suite (scaled by row nnz and magnitude).
fn out_of_tolerance(y: &[f32], want: &[f32], row_nnz: &[usize]) -> bool {
    let base = 2.0f32.powi(-10) * 3.0;
    y.iter().zip(want).zip(row_nnz).any(|((a, w), &nnz)| {
        let tol = (base * nnz.max(1) as f32 + 1e-4) * w.abs().max(1.0);
        (a - w).abs() > tol
    })
}

/// Robustness study: fault-injection sweep over the ABFT-checked Spaden
/// engine.
///
/// For each (dataset, rate) cell, `trials` independent launches take three
/// measurements on a GPU with uniform per-kind fault rates: a plain
/// (unchecked) run compared against the bitBSR reference to find output
/// corruption, an ABFT verification of that same output (detection), and a
/// full checked run exercising the detect-and-recompute ladder
/// (correction). `silent` counts corrupted-but-undetected runs and
/// `wrong` counts checked runs that returned `Ok` while out of tolerance —
/// the two quantities ABFT must hold at zero. `exhausted` counts checked
/// runs that gave up with a typed error instead (expected at fault rates
/// high enough that the scalar recompute path itself keeps faulting).
pub fn fault_sweep(
    config: GpuConfig,
    datasets: &[Dataset],
    rates: &[f64],
    trials: usize,
    seed: u64,
) -> (Table, FaultStats) {
    use spaden::{SpadenEngine, SpmvEngine};
    use spaden_gpusim::FaultConfig;

    let mut t = Table::new(
        format!("Robustness: injected faults vs ABFT detection/correction ({})", config.name),
        &[
            "Matrix",
            "rate",
            "runs",
            "faulted",
            "corrupted",
            "detected",
            "silent",
            "corrected",
            "exhausted",
            "wrong",
        ],
    );
    let mut total = FaultStats::default();
    for (di, ds) in datasets.iter().enumerate() {
        let x = make_x(ds.csr.ncols);
        let row_nnz: Vec<usize> = (0..ds.csr.nrows).map(|r| ds.csr.row_nnz(r)).collect();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut cfg = config.clone();
            cfg.faults = FaultConfig::uniform(seed + (di * 16 + ri) as u64, rate);
            let gpu = Gpu::new(cfg);
            let eng = match SpadenEngine::try_prepare(&gpu, &ds.csr) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("faults: {}: prepare failed: {e}", ds.spec.name);
                    continue;
                }
            };
            let want = eng.format().spmv_reference(&x).expect("reference SpMV");
            let mut cell = FaultStats::default();
            for _ in 0..trials {
                let plain = match eng.try_run(&gpu, &x) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("faults: {}: run failed: {e}", ds.spec.name);
                        continue;
                    }
                };
                cell.runs += 1;
                if plain.counters.faults_injected > 0 {
                    cell.faulted += 1;
                }
                let flagged = !eng.abft().verify(&x, &plain.y).is_empty();
                if out_of_tolerance(&plain.y, &want, &row_nnz) {
                    cell.corrupted += 1;
                    if flagged {
                        cell.detected += 1;
                    }
                }
                cell.checked += 1;
                match eng.try_run_checked(&gpu, &x) {
                    Ok(run) if !out_of_tolerance(&run.y, &want, &row_nnz) => cell.corrected += 1,
                    Ok(_) => cell.wrong += 1,
                    Err(_) => cell.exhausted += 1,
                }
            }
            t.push_row(vec![
                ds.spec.name.into(),
                format!("{rate:.0e}"),
                cell.runs.to_string(),
                cell.faulted.to_string(),
                cell.corrupted.to_string(),
                cell.detected.to_string(),
                (cell.corrupted - cell.detected).to_string(),
                cell.corrected.to_string(),
                cell.exhausted.to_string(),
                cell.wrong.to_string(),
            ]);
            total.add(&cell);
        }
    }
    t.push_row(vec![
        "TOTAL".into(),
        "".into(),
        total.runs.to_string(),
        total.faulted.to_string(),
        total.corrupted.to_string(),
        total.detected.to_string(),
        (total.corrupted - total.detected).to_string(),
        total.corrected.to_string(),
        total.exhausted.to_string(),
        total.wrong.to_string(),
    ]);
    (t, total)
}

/// Verification report: max relative error of each engine across datasets.
pub fn verification(sweep: &Sweep) -> Table {
    let engines = dedup_engines(sweep);
    let mut t = Table::new(
        format!("Verification: max relative error vs f64 oracle ({})", sweep.gpu),
        &["Engine", "max error", "datasets"],
    );
    for e in engines {
        let errs: Vec<f64> =
            sweep.cells.iter().filter(|c| c.engine == e).map(|c| c.max_err).collect();
        let max = errs.iter().copied().fold(0.0, f64::max);
        t.push_row(vec![e.to_string(), format!("{max:.2e}"), errs.len().to_string()]);
    }
    t
}

fn dedup_engines(sweep: &Sweep) -> Vec<&'static str> {
    let mut seen = Vec::new();
    for c in &sweep.cells {
        if !seen.contains(&c.engine) {
            seen.push(c.engine);
        }
    }
    seen
}

fn mean_in_scope(sweep: &Sweep, engine: &str, f: impl Fn(&SweepCell) -> f64) -> f64 {
    let vals: Vec<f64> = sweep
        .cells
        .iter()
        .filter(|c| c.engine == engine && c.in_scope)
        .map(&f)
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FIG6_ENGINES;
    use crate::load_datasets;

    fn tiny_sweep() -> Sweep {
        let datasets: Vec<Dataset> =
            spaden_sparse::datasets::ALL_DATASETS[..2].iter().map(|d| d.generate(0.01)).collect();
        run_sweep(GpuConfig::l40(), &datasets, &FIG6_ENGINES)
    }

    #[test]
    fn sweep_measures_every_cell_and_verifies() {
        let s = tiny_sweep();
        assert_eq!(s.cells.len(), 2 * FIG6_ENGINES.len());
        for c in &s.cells {
            assert!(c.gflops > 0.0, "{}/{}", c.engine, c.dataset);
            assert!(c.max_err < 0.05, "{}/{}: err {}", c.engine, c.dataset, c.max_err);
        }
    }

    #[test]
    fn figure_tables_render() {
        let s = tiny_sweep();
        for t in [fig6(&s), fig7(&s), fig9b(&s), fig10a(&s), fig10b(&s)] {
            let out = t.to_string();
            assert!(out.contains("raefsky3"), "{out}");
        }
        assert!(verification(&s).to_string().contains("Spaden"));
    }

    #[test]
    fn table1_and_fig9a_render() {
        let datasets = load_datasets(0.01, true);
        let t1 = table1(&datasets[..3]);
        assert!(t1.to_string().contains("raefsky3"));
        let t9 = fig9a(&datasets[..3]);
        assert!(t9.to_string().contains("conf5"));
    }

    #[test]
    fn fault_sweep_has_no_silent_corruption_and_corrects() {
        let datasets: Vec<Dataset> =
            spaden_sparse::datasets::ALL_DATASETS[..2].iter().map(|d| d.generate(0.01)).collect();
        let (t, s) = fault_sweep(GpuConfig::l40(), &datasets, &[1e-4, 1e-3], 4, 0xFA);
        assert_eq!(s.runs, 2 * 2 * 4);
        assert!(s.faulted > 0, "rates up to 1e-3 must inject something");
        assert_eq!(s.detected, s.corrupted, "silent corruption");
        assert_eq!(s.wrong, 0, "checked path must never return corrupt Ok");
        assert_eq!(
            s.corrected,
            s.checked,
            "correction must converge at sparse fault rates"
        );
        assert!(t.to_string().contains("TOTAL"));
    }

    #[test]
    fn geomean_speedup_is_symmetric_inverse() {
        let s = tiny_sweep();
        let ab = s.geomean_speedup("Spaden", "cuSPARSE CSR");
        let ba = s.geomean_speedup("cuSPARSE CSR", "Spaden");
        assert!((ab * ba - 1.0).abs() < 1e-9);
    }
}
