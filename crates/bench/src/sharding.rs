//! The `repro shard` experiment: multi-device sharded SpMV under device
//! failure.
//!
//! Not a paper figure — it certifies the fleet-level availability story:
//! latency scaling with device count, straggler speculation beating
//! no-speculation on tail latency, the device-failure chaos profiles
//! (one device killed mid-stream, all devices slow, rolling hangs), and
//! per-device health counters. The verdict line asserts the SLO: every
//! request verified-or-typed-error, zero silent wrong answers, ≥ 90%
//! availability with a device killed mid-stream, and speculation
//! improving straggler p99.

use crate::verdict::Verdict;
use crate::Table;
use spaden::gpusim::{DeviceFaultConfig, GpuConfig};
use spaden::sparse::gen;
use spaden_serve::{
    device_chaos_sweep, DeviceChaosConfig, DeviceChaosReport, DeviceProfile, Rung,
};
use spaden_shard::{DeviceFleet, ShardPolicy, ShardedMatrix};

fn shard_x(ncols: usize, salt: usize) -> Vec<f32> {
    (0..ncols).map(|i| ((i * 131 + salt * 977 + 29) % 256) as f32 / 128.0 - 1.0).collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs `requests` sharded executions and returns sorted latencies.
fn run_stream(
    m: &mut ShardedMatrix,
    fleet: &mut DeviceFleet,
    ncols: usize,
    requests: usize,
) -> Vec<f64> {
    let mut lat: Vec<f64> = (0..requests)
        .map(|salt| {
            let run = m
                .execute(fleet, &shard_x(ncols, salt), None)
                .expect("stream profiles are survivable");
            run.elapsed_s
        })
        .collect();
    lat.sort_by(f64::total_cmp);
    lat
}

/// Latency vs device count on a healthy fleet, plus the single-device
/// Spaden estimate as the scaling baseline.
fn scaling_table(gpu: &GpuConfig) -> Table {
    // Large enough that DRAM traffic, not fixed launch overhead,
    // dominates — otherwise the scaling curve flatlines.
    let csr = gen::random_uniform(16_384, 1024, 1_000_000, 1201);
    let mut t = Table::new(
        format!("Sharded SpMV latency vs device count ({})", gpu.name),
        &["devices", "shards", "p50 us", "p99 us", "speedup vs 1 dev"],
    );
    let mut p50_one = 0.0f64;
    for devices in [1usize, 2, 4, 8] {
        let mut m = ShardedMatrix::try_new(gpu, &csr, devices * 2, ShardPolicy::default())
            .expect("valid matrix shards");
        let mut fleet = DeviceFleet::new(devices, gpu, DeviceFaultConfig::disabled());
        let lat = run_stream(&mut m, &mut fleet, csr.ncols, 8);
        let p50 = percentile(&lat, 50.0);
        let p99 = percentile(&lat, 99.0);
        if devices == 1 {
            p50_one = p50;
        }
        t.push_row(vec![
            devices.to_string(),
            m.shards().len().to_string(),
            Table::num(p50 * 1e6),
            Table::num(p99 * 1e6),
            format!("{:.2}x", p50_one / p50.max(1e-30)),
        ]);
    }
    t
}

/// Speculation on vs off under a straggler-heavy fleet. Returns the
/// table and whether speculation beat no-speculation on p99.
fn speculation_table(gpu: &GpuConfig) -> (Table, bool) {
    let csr = gen::random_uniform(512, 192, 9_000, 1301);
    let faults = DeviceFaultConfig {
        seed: 97,
        straggler_rate: 0.25,
        straggler_factor: 20.0,
        ..DeviceFaultConfig::disabled()
    };
    let mut t = Table::new(
        format!("Straggler mitigation: speculative re-execution ({})", gpu.name),
        &["speculation", "p50 us", "p99 us", "spec launches", "spec wins"],
    );
    let mut p99s = [0.0f64; 2];
    for (i, speculation) in [true, false].into_iter().enumerate() {
        let policy = ShardPolicy { speculation, ..ShardPolicy::default() };
        let mut m = ShardedMatrix::try_new(gpu, &csr, 8, policy).expect("valid matrix shards");
        let mut fleet = DeviceFleet::new(4, gpu, faults);
        let lat = run_stream(&mut m, &mut fleet, csr.ncols, 48);
        p99s[i] = percentile(&lat, 99.0);
        let counters = fleet.counters();
        t.push_row(vec![
            if speculation { "on" } else { "off" }.to_string(),
            Table::num(percentile(&lat, 50.0) * 1e6),
            Table::num(p99s[i] * 1e6),
            counters.iter().map(|c| c.speculative_launches).sum::<u64>().to_string(),
            counters.iter().map(|c| c.speculative_wins).sum::<u64>().to_string(),
        ]);
    }
    (t, p99s[0] < p99s[1])
}

/// The device-failure chaos profiles through the serving ladder.
fn chaos_table(gpu: &GpuConfig, report: &DeviceChaosReport) -> Table {
    let mut t = Table::new(
        format!("Device-failure chaos profiles ({})", gpu.name),
        &[
            "profile", "seed", "reqs", "sharded", "1-dev", "failed", "lost", "retries", "hangs",
            "straggle", "spec", "wins", "wrong", "p50 us", "p99 us",
        ],
    );
    for c in &report.cells {
        let single_dev: u64 =
            c.served.iter().sum::<u64>() - c.served[Rung::Sharded as usize];
        t.push_row(vec![
            c.profile.name().to_string(),
            c.seed.to_string(),
            c.submitted.to_string(),
            c.served[Rung::Sharded as usize].to_string(),
            single_dev.to_string(),
            c.failed.to_string(),
            c.devices_lost.to_string(),
            c.retries.to_string(),
            c.hangs.to_string(),
            c.stragglers.to_string(),
            c.speculative_launches.to_string(),
            c.speculative_wins.to_string(),
            c.silent_wrong.to_string(),
            Table::num(c.p50_s * 1e6),
            Table::num(c.p99_s * 1e6),
        ]);
    }
    t
}

/// Per-device health counters after a mixed crash/hang/straggler stream.
fn health_table(gpu: &GpuConfig) -> Table {
    let csr = gen::random_uniform(512, 192, 9_000, 1401);
    let faults = DeviceFaultConfig {
        seed: 41,
        crash_rate: 0.004,
        hang_rate: 0.03,
        straggler_rate: 0.1,
        straggler_factor: 10.0,
    };
    let mut m =
        ShardedMatrix::try_new(gpu, &csr, 8, ShardPolicy::default()).expect("valid matrix shards");
    let mut fleet = DeviceFleet::new(4, gpu, faults);
    for salt in 0..40 {
        // Survivable failures are part of the profile; whole-fleet loss
        // is not expected at these rates.
        let _ = m.execute(&mut fleet, &shard_x(csr.ncols, salt), None);
    }
    let mut t = Table::new(
        format!("Per-device health after mixed-fault stream ({})", gpu.name),
        &[
            "device", "alive", "launches", "completed", "retries", "hangs", "straggle", "spec",
            "wins", "busy us", "DRAM MB", "MMA kops",
        ],
    );
    for c in fleet.counters() {
        t.push_row(vec![
            c.id.to_string(),
            if c.crashed { "dead" } else { "yes" }.to_string(),
            c.launches.to_string(),
            c.completed.to_string(),
            c.retries.to_string(),
            c.hangs.to_string(),
            c.stragglers.to_string(),
            c.speculative_launches.to_string(),
            c.speculative_wins.to_string(),
            Table::num(c.busy_s * 1e6),
            Table::num(c.dram_bytes() as f64 / 1e6),
            Table::num(c.mma_ops() as f64 / 1e3),
        ]);
    }
    t
}

/// Runs the full `repro shard` experiment: scaling, speculation,
/// device chaos, and per-device health, with a one-line SLO verdict.
pub fn shard_report(gpu: &GpuConfig, cfg: &DeviceChaosConfig) -> (Vec<Table>, Verdict, DeviceChaosReport) {
    let scaling = scaling_table(gpu);
    let (speculation, spec_beats) = speculation_table(gpu);
    let report = device_chaos_sweep(gpu, cfg);
    let chaos = chaos_table(gpu, &report);
    let health = health_table(gpu);

    let kill_rate = report
        .cells
        .iter()
        .filter(|c| c.profile == DeviceProfile::KillOneMidBatch)
        .map(|c| c.success_rate())
        .fold(1.0f64, f64::min);
    let verdict = Verdict::new(report.slo_holds() && spec_beats, format!(
        "SLO {}: {} requests, {} silently wrong, {:.1}% served with a device killed mid-stream, \
         speculation {} no-speculation on straggler p99",
        if report.slo_holds() && spec_beats { "HELD" } else { "VIOLATED" },
        report.submitted(),
        report.silent_wrong(),
        kill_rate * 100.0,
        if spec_beats { "beats" } else { "misses" },
    ));
    (vec![scaling, speculation, chaos, health], verdict, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_report_renders_and_slo_holds() {
        let cfg = DeviceChaosConfig {
            requests_per_cell: 208,
            ..DeviceChaosConfig::default()
        };
        let (tables, verdict, report) = shard_report(&GpuConfig::l40(), &cfg);
        assert_eq!(tables.len(), 4);
        assert_eq!(report.cells.len(), 3);
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("SLO HELD"), "{verdict}");
        let rendered = tables[0].to_string();
        assert!(rendered.contains("device count"));
        assert!(tables[3].to_string().contains("Per-device health"));
    }
}
