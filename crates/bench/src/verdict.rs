//! Typed experiment verdicts.
//!
//! Every `*_report` function used to return its verdict as a bare
//! `String`, which forced CI to grep for `OK` substrings. A [`Verdict`]
//! carries the pass/fail bit alongside the human-readable line, so the
//! `repro` binary can exit nonzero on any failed experiment and CI can
//! gate on exit codes instead of output scraping.

use std::fmt;

/// One experiment's verdict: the machine-checkable outcome plus the
/// one-line summary that has always been printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether every check behind the verdict passed.
    pub pass: bool,
    /// The printable verdict line (e.g. `EVOLVE OK: ...`).
    pub line: String,
}

impl Verdict {
    /// Builds a verdict from the pass bit and the rendered line.
    pub fn new(pass: bool, line: impl Into<String>) -> Self {
        Verdict { pass, line: line.into() }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_the_line_and_keeps_the_bit() {
        let v = Verdict::new(true, "X OK: fine");
        assert!(v.pass);
        assert_eq!(v.to_string(), "X OK: fine");
        let f = Verdict::new(false, format!("X FAIL: {} checks", 2));
        assert!(!f.pass);
        assert_eq!(f.to_string(), "X FAIL: 2 checks");
    }
}
