//! `spaden-cli` — run any SpMV engine on a MatrixMarket file or a built-in
//! synthetic dataset and report performance, traffic and accuracy.
//!
//! ```text
//! spaden-cli --dataset cant --engine spaden --gpu l40
//! spaden-cli --mtx path/to/matrix.mtx --engine all --iters 5
//! spaden-cli --list-datasets
//! ```

use spaden_bench::{build_engine, make_x, max_rel_error, EngineKind, FIG6_ENGINES};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_sparse::csr::Csr;
use spaden_sparse::datasets::{by_name, ALL_DATASETS};
use spaden_sparse::stats::block_profile;

struct Args {
    matrix: MatrixSource,
    engines: Vec<EngineKind>,
    gpu: GpuConfig,
    scale: f64,
    iters: usize,
}

enum MatrixSource {
    Mtx(String),
    Dataset(String),
    List,
}

fn parse_args() -> Result<Args, String> {
    let mut matrix = None;
    let mut engines = vec![EngineKind::Spaden];
    let mut gpu = GpuConfig::l40();
    let mut scale = 0.05;
    let mut iters = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--mtx" => matrix = Some(MatrixSource::Mtx(args.next().ok_or("--mtx needs a path")?)),
            "--dataset" => {
                matrix = Some(MatrixSource::Dataset(args.next().ok_or("--dataset needs a name")?))
            }
            "--list-datasets" => matrix = Some(MatrixSource::List),
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                engines = if v.eq_ignore_ascii_case("all") {
                    let mut all = FIG6_ENGINES.to_vec();
                    all.push(EngineKind::SpadenNoTc);
                    all.push(EngineKind::CsrWarp16);
                    all
                } else {
                    vec![EngineKind::parse(&v).ok_or_else(|| format!("unknown engine: {v}"))?]
                };
            }
            "--gpu" => {
                gpu = match args.next().ok_or("--gpu needs a value")?.to_ascii_lowercase().as_str()
                {
                    "l40" => GpuConfig::l40(),
                    "v100" => GpuConfig::v100(),
                    other => return Err(format!("unknown gpu: {other}")),
                };
            }
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "bad scale")?;
            }
            "--iters" => {
                iters = args
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|_| "bad iters")?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Args {
        matrix: matrix.ok_or("pass --mtx PATH, --dataset NAME or --list-datasets")?,
        engines,
        gpu,
        scale,
        iters,
    })
}

fn load(args: &Args) -> Result<(String, Csr), String> {
    match &args.matrix {
        MatrixSource::Mtx(path) => {
            let csr = spaden_sparse::mtx::read_mtx(std::path::Path::new(path))
                .map_err(|e| format!("failed to read {path}: {e}"))?;
            Ok((path.clone(), csr))
        }
        MatrixSource::Dataset(name) => {
            let spec = by_name(name).ok_or_else(|| {
                format!("unknown dataset {name}; try --list-datasets")
            })?;
            Ok((format!("{name} (synthetic, scale {})", args.scale), spec.generate(args.scale).csr))
        }
        MatrixSource::List => unreachable!("handled in main"),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: spaden-cli (--mtx PATH | --dataset NAME | --list-datasets) \
                 [--engine NAME|all] [--gpu l40|v100] [--scale S] [--iters N]"
            );
            std::process::exit(2);
        }
    };

    if matches!(args.matrix, MatrixSource::List) {
        println!("{:<14} {:>10} {:>12} {:>8} {:>10} scope", "name", "nrow", "nnz", "deg", "Bnnz");
        for d in ALL_DATASETS.iter() {
            println!(
                "{:<14} {:>10} {:>12} {:>8.1} {:>10} {}",
                d.name,
                d.nrow,
                d.nnz,
                d.mean_degree(),
                d.bnnz,
                if d.in_scope { "in-scope" } else { "out-of-scope" }
            );
        }
        return;
    }

    let (label, csr) = match load(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!("matrix: {label}");
    println!(
        "  {} x {}, {} nonzeros ({:.1} per row)",
        csr.nrows,
        csr.ncols,
        csr.nnz(),
        csr.mean_degree()
    );
    let p = block_profile(&csr);
    println!(
        "  8x8 blocks: {} (sparse {:.0}% / medium {:.0}% / dense {:.0}%, mean fill {:.1})",
        p.total(),
        100.0 * p.sparse_ratio(),
        100.0 * p.medium_ratio(),
        100.0 * p.dense_ratio(),
        p.mean_fill()
    );
    if csr.mean_degree() <= 32.0 {
        println!(
            "  note: nnz/nrow = {:.1} <= 32 — outside Spaden's recommended scope (paper §5.1)",
            csr.mean_degree()
        );
    }

    let gpu = Gpu::new(args.gpu.clone());
    let x = make_x(csr.ncols);
    let oracle = csr.spmv_f64(&x).expect("oracle SpMV");

    println!("\nGPU model: {}\n", args.gpu.name);
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "engine", "GFLOPS", "time us", "prep ms", "B/nnz", "max err", "bottleneck"
    );
    for kind in &args.engines {
        let engine = build_engine(*kind, &gpu, &csr);
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..args.iters.max(1) {
            let run = engine.run(&gpu, &x);
            best = best.min(run.time.seconds);
            last = Some(run);
        }
        let run = last.expect("at least one iteration");
        let prep = engine.prep();
        println!(
            "{:<14} {:>10.1} {:>10.2} {:>10.3} {:>10.2} {:>10.2e} {:>11}",
            engine.name(),
            2.0 * engine.nnz() as f64 / best / 1e9,
            best * 1e6,
            prep.seconds * 1e3,
            prep.bytes_per_nnz(engine.nnz()),
            max_rel_error(&run.y, &oracle),
            run.time.bottleneck(),
        );
    }
}
