//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale S] [--gpu l40|v100|both] [--seed N]
//!
//! experiments: table1 fig6 fig7 fig8 fig9a fig9b fig10a fig10b
//!              ablations extensions reordering faults plan sanitize serve
//!              shard traffic evolve recover bench chaos verify all
//! ```
//!
//! `--scale` shrinks every dataset proportionally (default 0.05; use 1.0
//! for paper-size matrices). Figures 6/7 include the two out-of-scope
//! matrices like the paper; summary rows always exclude them. `--smoke`
//! shortens the `evolve` and `recover` scenarios for CI smoke jobs.
//! `--seed` overrides the seed of every seeded experiment (serve,
//! faults, traffic, shard, evolve, recover, bench, chaos) and is echoed
//! in the report header so any run can be reproduced from its output
//! alone. `chaos --replay <file>` re-runs a shrunk reproducer emitted
//! by a failing chaos sweep. Any experiment whose verdict fails makes
//! `repro` exit nonzero, so CI gates on exit codes, not output greps.

use spaden_bench::{
    fig10a, fig10b, fig6, fig7, fig8, fig9a, fig9b, load_datasets, run_sweep, table1,
    verification, EngineKind, Sweep, FIG6_ENGINES,
};
use spaden_gpusim::GpuConfig;

struct Args {
    experiment: String,
    scale: f64,
    gpus: Vec<GpuConfig>,
    smoke: bool,
    seed: Option<u64>,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut scale = 0.05;
    let mut gpus = vec![GpuConfig::l40(), GpuConfig::v100()];
    let mut smoke = false;
    let mut seed = None;
    let mut replay = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--replay" => {
                let v = args.next().ok_or("--replay needs a file path")?;
                replay = Some(v);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
            }
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--gpu" => {
                let v = args.next().ok_or("--gpu needs a value")?;
                gpus = match v.to_ascii_lowercase().as_str() {
                    "l40" => vec![GpuConfig::l40()],
                    "v100" => vec![GpuConfig::v100()],
                    "both" => vec![GpuConfig::l40(), GpuConfig::v100()],
                    other => return Err(format!("unknown gpu: {other}")),
                };
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Args { experiment, scale, gpus, smoke, seed, replay })
}

/// All eight engines: the Figure-6 set plus the Figure-8 ablations.
fn all_engines() -> Vec<EngineKind> {
    let mut v = FIG6_ENGINES.to_vec();
    v.push(EngineKind::SpadenNoTc);
    v.push(EngineKind::CsrWarp16);
    v
}

fn sweep_for(cfg: GpuConfig, scale: f64, kinds: &[EngineKind], with_oos: bool) -> Sweep {
    let datasets = load_datasets(scale, with_oos);
    run_sweep(cfg, &datasets, kinds)
}

fn headline(sweep: &Sweep) {
    println!("\nHeadline geomean speedups of Spaden on {} (in-scope matrices):", sweep.gpu);
    for base in ["cuSPARSE CSR", "cuSPARSE BSR", "LightSpMV", "Gunrock", "DASP"] {
        let s = sweep.geomean_speedup("Spaden", base);
        if s.is_finite() && s > 0.0 {
            println!("  over {base:<13} {s:.2}x");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: repro <table1|fig6|fig7|fig8|fig9a|fig9b|fig10a|fig10b|ablations|extensions|reordering|faults|verify|all> \
                 [--scale S] [--gpu l40|v100|both] [--smoke] [--seed N] [--replay FILE]   \
                 (also: plan sanitize serve shard traffic evolve recover bench chaos)"
            );
            std::process::exit(2);
        }
    };
    let scale = args.scale;
    match args.seed {
        Some(s) => println!(
            "# Spaden reproduction — experiment `{}` at scale {scale}, seed {s}",
            args.experiment
        ),
        None => println!(
            "# Spaden reproduction — experiment `{}` at scale {scale}, default seeds",
            args.experiment
        ),
    }

    let mut failed = false;
    match args.experiment.as_str() {
        "table1" => {
            println!("{}", table1(&load_datasets(scale, true)));
        }
        "fig6" => {
            for cfg in args.gpus {
                let s = sweep_for(cfg, scale, &FIG6_ENGINES, true);
                println!("{}", fig6(&s));
            }
        }
        "fig7" => {
            for cfg in args.gpus {
                let s = sweep_for(cfg, scale, &FIG6_ENGINES, true);
                println!("{}", fig7(&s));
                headline(&s);
            }
        }
        "fig8" => {
            // The paper discusses Figure 8 on the L40 only.
            let mut kinds = spaden_bench::FIG8_ENGINES.to_vec();
            kinds.push(EngineKind::CusparseCsr);
            let s = sweep_for(GpuConfig::l40(), scale, &kinds, false);
            println!("{}", fig8(&s));
        }
        "fig9a" => {
            println!("{}", fig9a(&load_datasets(scale, true)));
        }
        "fig9b" => {
            let kinds = [EngineKind::Spaden, EngineKind::CusparseBsr];
            let s = sweep_for(GpuConfig::l40(), scale, &kinds, false);
            println!("{}", fig9b(&s));
        }
        "fig10a" | "fig10b" => {
            let kinds = [
                EngineKind::CusparseCsr,
                EngineKind::CusparseBsr,
                EngineKind::Spaden,
                EngineKind::Dasp,
            ];
            let s = sweep_for(GpuConfig::l40(), scale, &kinds, true);
            if args.experiment == "fig10a" {
                println!("{}", fig10a(&s));
            } else {
                println!("{}", fig10b(&s));
            }
        }
        "ablations" => {
            let datasets = load_datasets(scale, false);
            for t in spaden_bench::ablations(GpuConfig::l40(), &datasets) {
                println!("{t}");
            }
        }
        "extensions" => {
            let gpus = args.gpus.clone();
            let datasets = load_datasets(scale, false);
            for cfg in gpus {
                for t in spaden_bench::extensions(cfg, &datasets) {
                    println!("{t}");
                }
            }
        }
        "reordering" => {
            let datasets = load_datasets(scale, false);
            println!("{}", spaden_bench::reordering(GpuConfig::l40(), &datasets));
        }
        "faults" => {
            let datasets = load_datasets(scale, false);
            let rates = [1e-4, 1e-3, 1e-2];
            for cfg in args.gpus {
                let (t, s) = spaden_bench::fault_sweep(cfg, &datasets, &rates, 6, args.seed.unwrap_or(0xFA));
                println!("{t}");
                println!(
                    "detection: {}/{} corrupted runs flagged; correction: {}/{} checked runs verified",
                    s.detected, s.corrupted, s.corrected, s.checked
                );
            }
        }
        "serve" => {
            // Fixed seeds: the sweep (and CI's chaos smoke job) must be
            // reproducible run to run. Two profiles: uniform faults hit
            // every rung (breaker trips, shedding, recovery once the burst
            // passes), tensor-core-only faults spare the scalar/CSR rungs
            // (failover keeps serving one rung down the ladder).
            let seeds = match args.seed {
                Some(s) => vec![s, s.wrapping_add(12)],
                None => vec![11, 23],
            };
            let uniform = spaden_serve::ChaosConfig {
                rates: vec![0.0, 1e-2, 5e-2, 2e-1],
                profile: spaden_serve::FaultProfile::Uniform,
                seeds: seeds.clone(),
                requests_per_cell: 32,
                ..spaden_serve::ChaosConfig::default()
            };
            let tc_only = spaden_serve::ChaosConfig {
                rates: vec![2e-1, 1.0],
                profile: spaden_serve::FaultProfile::TensorCoreOnly,
                seeds,
                requests_per_cell: 32,
                ..spaden_serve::ChaosConfig::default()
            };
            for gpu in &args.gpus {
                for (label, cfg) in [("uniform", &uniform), ("tensor-core-only", &tc_only)] {
                    println!("\n### Fault profile: {label}");
                    let (tables, verdict, _) = spaden_bench::serve_report(gpu, cfg);
                    for t in tables {
                        println!("{t}");
                    }
                    println!("{verdict}");
                    failed |= !verdict.pass;
                }
            }
            // Batched SpMM serving: the same Zipf same-matrix workload
            // served per-request and through the batching window. The
            // BATCH verdict line asserts the >= 2x goodput advantage at
            // equal-or-better p99 with zero unverified results; CI's
            // batch-smoke job greps it.
            let mut batch_cfg = if args.smoke {
                spaden_bench::BatchBenchConfig::smoke()
            } else {
                spaden_bench::BatchBenchConfig::default()
            };
            if let Some(s) = args.seed {
                batch_cfg.seed = s;
            }
            for gpu in &args.gpus {
                println!("\n### Batched SpMM serving");
                let (tables, verdict, _) = spaden_bench::batch_report(gpu, &batch_cfg);
                for t in tables {
                    println!("{t}");
                }
                println!("{verdict}");
                failed |= !verdict.pass;
            }
        }
        "sanitize" => {
            // Certifies SimSan: the full engine matrix runs violation-free
            // (and bit-identical to sanitizer-off runs), every seeded
            // hazard class is caught with the right report kind, and the
            // numerical edge corpus resolves through the serving ladder
            // with f16 hazards demoted. CI's sanitize job greps the SAN
            // verdict line.
            let (tables, verdict, _) = spaden_bench::sanitize_report(&args.gpus);
            for t in tables {
                println!("{t}");
            }
            println!("{verdict}");
            failed |= !verdict.pass;
        }
        "plan" => {
            // Certifies the plan layer: cost-model selection accuracy vs
            // the exhaustive oracle on a fixed synthetic corpus, plus the
            // memory-budgeted plan cache (budget sweep + repeat-hit
            // check). CI's plan smoke job greps the PLAN verdict line.
            let (tables, verdict, _) = spaden_bench::plan_report(&args.gpus);
            for t in tables {
                println!("{t}");
            }
            println!("{verdict}");
            failed |= !verdict.pass;
        }
        "traffic" => {
            // Certifies the overload-control layer: an open-loop Poisson
            // saturation ladder plus a flash-crowd spike, all seeded and
            // on the simulated clock. The verdict line asserts >= 99%
            // availability below saturation, graceful degradation (no
            // goodput cliff) past it, high-priority protection, zero
            // unverified results in any brownout mode, and per-seed bit
            // determinism. CI's traffic-smoke job greps `TRAFFIC OK`.
            let mut cfg = spaden_traffic::SweepConfig::default();
            if let Some(s) = args.seed {
                cfg.seed = s;
            }
            for gpu in &args.gpus {
                let (tables, verdict, _) = spaden_bench::traffic_report(gpu, &cfg);
                for t in tables {
                    println!("{t}");
                }
                println!("{verdict}");
                failed |= !verdict.pass;
            }
        }
        "evolve" => {
            // Certifies the evolving-matrix lifecycle: a scale-free
            // adjacency matrix takes a seeded stream of verified delta
            // batches (value-only and structural, a storm cluster, one
            // injected fault that must roll back) while open-loop read
            // traffic is served epoch-consistently on top. The verdict
            // asserts bit-identical compaction, incremental-ABFT
            // exactness, rollback-not-publish on corruption, zero torn
            // or stale reads, and the availability bar through the
            // storm. CI's evolve-smoke job greps `EVOLVE OK`.
            let mut cfg = if args.smoke {
                spaden_bench::EvolveScenario::smoke()
            } else {
                spaden_bench::EvolveScenario::default()
            };
            if let Some(s) = args.seed {
                cfg.seed = s;
            }
            for gpu in &args.gpus {
                let (tables, verdict, _) = spaden_bench::evolve_report(gpu, &cfg);
                for t in tables {
                    println!("{t}");
                }
                println!("{verdict}");
                failed |= !verdict.pass;
            }
        }
        "recover" => {
            // Certifies crash-consistent durability: kill-at-every-
            // WAL-record recovery must come back bit-for-bit (epoch,
            // fingerprint, served result bits), corrupt tails truncate
            // to a verified epoch, corrupt snapshots fall back to the
            // older slot, and the reopened server serves zero torn
            // reads before resuming evolution. Every injected storage
            // fault's error text is prefixed `injected:` — CI's
            // recover-smoke job greps `RECOVER OK` and fails on any
            // WalError outside those lines. Also writes the machine-
            // readable `recover_report.json`.
            let mut cfg = if args.smoke {
                spaden_bench::RecoverScenario::smoke()
            } else {
                spaden_bench::RecoverScenario::default()
            };
            if let Some(s) = args.seed {
                cfg.seed = s;
            }
            for gpu in &args.gpus {
                let (tables, verdict, report) = spaden_bench::recover_report(gpu, &cfg);
                for t in tables {
                    println!("{t}");
                }
                println!("{verdict}");
                failed |= !verdict.pass;
                let json = spaden_bench::recover_report_json(gpu, &cfg, &verdict.line, &report);
                match std::fs::write("recover_report.json", &json) {
                    Ok(()) => println!("wrote recover_report.json"),
                    Err(e) => eprintln!("could not write recover_report.json: {e}"),
                }
            }
        }
        "shard" => {
            // Fixed seed so CI's shard-chaos job is reproducible run to
            // run. The sweep kills a device mid-stream, slows the whole
            // fleet, and rolls hangs across it; the verdict line asserts
            // the SLO (zero silently wrong, >= 90% availability under
            // device loss, speculation beating no-speculation on p99).
            let mut cfg = spaden_serve::DeviceChaosConfig::default();
            if let Some(s) = args.seed {
                cfg.seeds = vec![s, s.wrapping_add(12)];
            }
            for gpu in &args.gpus {
                let (tables, verdict, _) = spaden_bench::shard_report(gpu, &cfg);
                for t in tables {
                    println!("{t}");
                }
                println!("{verdict}");
                failed |= !verdict.pass;
            }
        }
        "bench" => {
            // The machine-readable performance summary: per-engine geomean
            // GFLOPS on the in-scope corpus, the SpMM amortisation curve
            // over K in {1,2,4,8,16}, serving p50/p99 under light load,
            // and the plan cache's repeat hit rate. Written to
            // `BENCH_10.json` for dashboards; the tables mirror it.
            let seed = args.seed.unwrap_or(11);
            for gpu in &args.gpus {
                let s = spaden_bench::run_bench_summary(gpu, scale, seed);
                for t in spaden_bench::bench_summary_tables(gpu, &s) {
                    println!("{t}");
                }
                let json = spaden_bench::bench_summary_json(gpu, scale, seed, &s);
                let path = if args.gpus.len() > 1 {
                    format!("BENCH_10_{}.json", gpu.name.to_ascii_lowercase())
                } else {
                    "BENCH_10.json".to_string()
                };
                match std::fs::write(&path, &json) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("could not write {path}: {e}"),
                }
            }
        }
        "chaos" => {
            // Deterministic chaos orchestration: correlated multi-fault
            // schedules through the full stack with the global invariant
            // oracle. `--replay FILE` re-runs a shrunk reproducer emitted
            // by a failing sweep; otherwise the sweep explores 200
            // schedules (24 with `--smoke`). On a violation the minimal
            // reproducer is written to `chaos_repro.txt` and the exit
            // code is nonzero — CI's chaos-smoke job gates on it.
            if let Some(path) = &args.replay {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read replay file {path}: {e}");
                        std::process::exit(2);
                    }
                };
                let replay = match spaden_chaos::ReplayFile::parse(&text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("bad replay file {path}: {e}");
                        std::process::exit(2);
                    }
                };
                for gpu in &args.gpus {
                    let out = spaden_chaos::run_schedule(gpu, &replay.schedule, replay.weaken);
                    println!(
                        "replayed seed {} on {}: {} events, {} arrivals offered, {} served, digest {:#018x}",
                        replay.schedule.seed,
                        gpu.name,
                        replay.schedule.events.len(),
                        out.offered,
                        out.served,
                        out.digest,
                    );
                    if out.violations.is_empty() {
                        println!("CHAOS REPLAY OK: no invariant violations");
                    } else {
                        for v in &out.violations {
                            println!("violation: {v}");
                        }
                        println!("CHAOS REPLAY FAIL: {} invariant violation(s)", out.violations.len());
                        failed = true;
                    }
                }
            } else {
                let seed0 = args.seed.unwrap_or(1);
                let cfg = if args.smoke {
                    spaden_chaos::ExploreConfig::smoke(seed0)
                } else {
                    spaden_chaos::ExploreConfig::full(seed0)
                };
                for gpu in &args.gpus {
                    let (tables, verdict, findings) = spaden_bench::chaos_report(gpu, &cfg);
                    for t in tables {
                        println!("{t}");
                    }
                    println!("{verdict}");
                    failed |= !verdict.pass;
                    if let Some(caught) = &findings.caught {
                        for v in &caught.violations {
                            println!("violation: {v}");
                        }
                        match std::fs::write("chaos_repro.txt", &caught.replay) {
                            Ok(()) => println!(
                                "wrote chaos_repro.txt (shrunk to {} event(s); replay with `repro chaos --replay chaos_repro.txt`)",
                                caught.shrunk.events.len()
                            ),
                            Err(e) => eprintln!("could not write chaos_repro.txt: {e}"),
                        }
                    }
                }
            }
        }
        "verify" => {
            for cfg in args.gpus {
                let s = sweep_for(cfg, scale, &all_engines(), true);
                println!("{}", verification(&s));
            }
        }
        "all" => {
            println!("{}", table1(&load_datasets(scale, true)));
            println!("{}", fig9a(&load_datasets(scale, true)));
            for cfg in args.gpus {
                let s = sweep_for(cfg.clone(), scale, &all_engines(), true);
                println!("{}", fig6(&s));
                println!("{}", fig7(&s));
                headline(&s);
                if cfg.name == "L40" {
                    println!("{}", fig8(&s));
                    println!("{}", fig9b(&s));
                    println!("{}", fig10a(&s));
                    println!("{}", fig10b(&s));
                    let (ft, _) =
                        spaden_bench::fault_sweep(cfg.clone(), &load_datasets(scale, false), &[1e-3], 4, args.seed.unwrap_or(0xFA));
                    println!("{ft}");
                }
                println!("{}", verification(&s));
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
    if failed {
        eprintln!("repro: experiment `{}` FAILED", args.experiment);
        std::process::exit(1);
    }
}
