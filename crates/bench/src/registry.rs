//! Engine registry — re-exported from `spaden-plan`.
//!
//! The catalog moved into the plan crate so the planner, the serving
//! layer, and this harness share one registry; existing
//! `spaden_bench::registry::*` users keep working through this shim.

pub use spaden_plan::registry::{
    build_engine, try_build_engine, EngineKind, ALL_ENGINES, FIG6_ENGINES, FIG8_ENGINES,
};
