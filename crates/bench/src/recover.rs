//! `repro recover` — the crash-consistency harness behind the
//! `RECOVER` verdict line.
//!
//! The scenario evolves a durable scale-free matrix through a seeded
//! stream of verified delta batches (the PR-7 evolving-PageRank shape),
//! capturing a crash point after **every** WAL record: each committed
//! epoch's post-commit [`StoreImage`], plus a synthesized
//! kill-between-append-and-snapshot image whenever a commit installed a
//! checkpoint, plus the registration-time image. Each crash point is
//! then reopened on a fresh server and must come back *bit-for-bit*:
//! same epoch, same content fingerprint, same served `y` bits as the
//! pre-crash server produced at that epoch, with the recovery report
//! clean and the store re-checkpointed (empty log) before serving
//! resumes.
//!
//! A second phase runs the full storage fault model
//! ([`StorageFault::ALL`] × seeds) against the final image and asserts
//! the typed degradation contract: torn tails and mid-frame truncations
//! surface `TornFrame` and recover a strictly earlier verified epoch,
//! WAL bit rot is always caught by the frame CRC, snapshot bit rot
//! falls back to the older slot and still reaches the tip via the
//! longer replay, duplicated frames are idempotent, and a lost fsync
//! surfaces `SeqGap`. Every injected mutation and resulting error is
//! rendered with an `injected:` prefix so CI can fail on any `WalError`
//! printed *outside* the injection phase.

use crate::verdict::Verdict;
use crate::evolve::{oracle_tol, structural_batch, value_only_batch};
use crate::Table;
use spaden::{EvolveConfig, UpdateFault};
use spaden_gpusim::{Gpu, GpuConfig};
use spaden_serve::{MatrixHandle, Request, ServeConfig, SpmvServer};
use spaden_sparse::delta::apply_to_csr;
use spaden_sparse::{gen, Csr, Pcg64};
use spaden_store::{append_record, inject, SnapshotPolicy, StorageFault, StoreImage, WalError};
use spaden_traffic::{traffic_x, Check};
use std::time::Instant;

/// Shape of one `repro recover` run. Everything except the wall-clock
/// replay timings is seeded; two runs of the same scenario produce
/// identical verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverScenario {
    /// Seed for the graph, the update stream, and the fault injector.
    pub seed: u64,
    /// Graph nodes (matrix dimension).
    pub nodes: usize,
    /// Initial edges (matrix nonzeros before updates).
    pub edges: usize,
    /// Committed update batches (= WAL records = kill points).
    pub updates: usize,
    /// Snapshot cadence in epochs.
    pub snapshot_every: u64,
    /// Seeds per fault kind in the injection phase.
    pub fault_seeds: usize,
    /// Reads served on the reopened server for the torn-read bar.
    pub reads: usize,
}

impl Default for RecoverScenario {
    fn default() -> Self {
        // `updates` is chosen so the final image keeps at least one
        // *interior* replay record past the newest checkpoint — the
        // lost-fsync fault needs one to bite.
        RecoverScenario {
            seed: 20_268,
            nodes: 96,
            edges: 900,
            updates: 11,
            snapshot_every: 3,
            fault_seeds: 3,
            reads: 24,
        }
    }
}

impl RecoverScenario {
    /// A shorter run for CI smoke jobs — same structure, fewer events.
    pub fn smoke() -> Self {
        RecoverScenario { updates: 8, fault_seeds: 2, reads: 12, ..Default::default() }
    }
}

/// One crash point's recovery outcome, for the ledger table.
#[derive(Debug, Clone)]
pub struct CrashRow {
    /// Which kill this was ("epoch 4", "epoch 6 (pre-snapshot)", ...).
    pub label: String,
    /// The epoch the pre-crash server was at (and recovery must reach).
    pub epoch: u64,
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: u64,
    /// Log records replayed through the verified commit path.
    pub replayed: usize,
    /// Records skipped as already-committed duplicates.
    pub duplicates: usize,
    /// Wall-clock recovery time (snapshot restore + replay + re-prepare).
    pub replay_us: f64,
    /// Size of the crash image's log.
    pub wal_bytes: usize,
    /// Size of the crash image's newest snapshot.
    pub snapshot_bytes: usize,
    /// Recovery was clean and the epoch came back bit-for-bit (epoch,
    /// fingerprint, served `y` bits) with the store re-checkpointed.
    pub identical: bool,
}

/// One fault injection's outcome, for the injection table.
#[derive(Debug, Clone)]
pub struct InjectionRow {
    /// Fault kind name.
    pub fault: &'static str,
    /// Injection seed.
    pub seed: u64,
    /// What the injector did, or why it could not.
    pub mutation: String,
    /// Recovery's account: epoch reached, slot, replay, typed errors.
    pub recovery: String,
    /// The degradation contract for this fault kind held and the
    /// recovered epoch's served bits matched the pre-crash record.
    pub pass: bool,
}

/// Everything `repro recover` renders.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// Per-crash-point recovery ledger, in kill order.
    pub crash_points: Vec<CrashRow>,
    /// Per-injection ledger, faults × seeds.
    pub injections: Vec<InjectionRow>,
    /// Reads verified on the reopened server / reads offered.
    pub reads_verified: u64,
    /// Reads offered on the reopened server.
    pub reads_offered: u64,
    /// The verdict checks, in order.
    pub checks: Vec<Check>,
}

impl RecoverReport {
    /// Whether every verdict check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// One recorded kill point: the durable image plus everything the
/// recovered server must reproduce bit-for-bit.
struct CrashPoint {
    label: String,
    image: StoreImage,
    epoch: u64,
    fp_key: u64,
    y_bits: Vec<u32>,
}

fn evolve_config() -> EvolveConfig {
    // Mirrors the evolve scenario: low threshold so structural batches
    // trigger verified compaction inside the replayed commit path too.
    EvolveConfig { side_capacity: 256, compact_threshold: 4, audit: true }
}

/// Serves the fixed probe vector and returns the exact result bits.
fn serve_bits(server: &mut SpmvServer, h: MatrixHandle, x: &[f32]) -> Vec<u32> {
    let ok = server
        .serve(Request { matrix: h, x: x.to_vec(), deadline_s: None })
        .expect("probe read serves");
    ok.y.iter().map(|v| v.to_bits()).collect()
}

fn fp_key(server: &SpmvServer, h: MatrixHandle) -> u64 {
    server.fingerprint_of(h).expect("registered matrix has a fingerprint").key()
}

/// A fresh single-device server with a decoy matrix registered first,
/// so the recovered handle is never 0 (catches handle/index mixups).
fn fresh_server(gpu: &GpuConfig, probe: &Csr) -> SpmvServer {
    let mut server = SpmvServer::new(Gpu::new(gpu.clone()), ServeConfig::default());
    server.register(probe).expect("probe registers");
    server
}

/// Runs the scenario and assembles the verdict.
pub fn run_recover(gpu: &GpuConfig, cfg: &RecoverScenario) -> RecoverReport {
    let policy = SnapshotPolicy { snapshot_every: cfg.snapshot_every.max(1) };
    let initial = gen::scale_free(cfg.nodes, cfg.edges, 2.0, cfg.seed);
    let probe = gen::random_uniform(64, 64, 400, cfg.seed + 1);
    let mut rng = Pcg64::new(cfg.seed, 0x2ec0);
    let x = traffic_x(cfg.nodes, 0);

    // ---- Phase 1: evolve a durable matrix, recording a crash point
    // after every WAL record and every snapshot install.
    let mut server = fresh_server(gpu, &probe);
    let h = server
        .register_evolving_durable(&initial, evolve_config(), policy)
        .expect("durable evolving matrix registers");

    let mut truth = initial.clone();
    let mut truth_chain = vec![initial.clone()];
    let mut y_bits_by_epoch: Vec<Vec<u32>> = Vec::new();
    let mut points: Vec<CrashPoint> = Vec::new();

    let y0 = serve_bits(&mut server, h, &x);
    y_bits_by_epoch.push(y0.clone());
    points.push(CrashPoint {
        label: "epoch 0 (registration)".into(),
        image: server.durable_image(h).expect("durable registration has an image"),
        epoch: 0,
        fp_key: fp_key(&server, h),
        y_bits: y0,
    });

    let mut rollback_reached_log = false;
    let mut rollback_attempted = false;
    for i in 0..cfg.updates {
        if i == cfg.updates / 2 {
            // A corrupted batch mid-run: it must roll back without
            // appending anything to the log (no record, no snapshot).
            rollback_attempted = true;
            let before = {
                let s = server.durable_store(h).expect("durable store");
                (s.records_appended(), s.wal_bytes(), s.snapshots_installed())
            };
            let bad = value_only_batch(&truth, &mut rng, 4);
            let res =
                server.update_with_fault(h, &bad, Some(UpdateFault { delta_index: 0, bit: 9 }));
            let after = {
                let s = server.durable_store(h).expect("durable store");
                (s.records_appended(), s.wal_bytes(), s.snapshots_installed())
            };
            rollback_reached_log |= res.is_ok() || before != after;
        }
        let batch = if i % 2 == 0 {
            value_only_batch(&truth, &mut rng, 6)
        } else {
            structural_batch(&truth, &mut rng, 5, 2)
        };
        let pre_image = server.durable_image(h).expect("durable image");
        let installed_before =
            server.durable_store(h).expect("durable store").snapshots_installed();
        server.update(h, &batch).expect("clean batch commits");
        truth = apply_to_csr(&truth, &batch).expect("truth chain applies");
        truth_chain.push(truth.clone());

        let epoch = server.epoch(h).expect("evolving matrix has an epoch");
        let yb = serve_bits(&mut server, h, &x);
        y_bits_by_epoch.push(yb.clone());
        let fpk = fp_key(&server, h);
        points.push(CrashPoint {
            label: format!("epoch {epoch}"),
            image: server.durable_image(h).expect("durable image"),
            epoch,
            fp_key: fpk,
            y_bits: yb.clone(),
        });
        if server.durable_store(h).expect("durable store").snapshots_installed()
            > installed_before
        {
            // This commit installed a checkpoint. Synthesize the crash
            // where the WAL append made it to disk but the snapshot
            // install (and log truncation) did not.
            let mut img = pre_image;
            append_record(&mut img.wal, epoch, &batch.to_bytes());
            points.push(CrashPoint {
                label: format!("epoch {epoch} (pre-snapshot)"),
                image: img,
                epoch,
                fp_key: fpk,
                y_bits: yb,
            });
        }
    }
    let tip_epoch = server.epoch(h).expect("epoch");
    let final_image = server.durable_image(h).expect("durable image");

    // ---- Phase 2: kill at every recorded point, reopen, compare bits.
    let mut crash_points = Vec::new();
    let (mut identical_points, mut checkpointed_points) = (0usize, 0usize);
    for p in &points {
        let mut srv = fresh_server(gpu, &probe);
        let t0 = Instant::now();
        let recovered = srv.recover_evolving(&p.image, policy);
        let replay_us = t0.elapsed().as_secs_f64() * 1e6;
        let Ok((h2, rep)) = recovered else {
            crash_points.push(CrashRow {
                label: p.label.clone(),
                epoch: p.epoch,
                snapshot_epoch: 0,
                replayed: 0,
                duplicates: 0,
                replay_us,
                wal_bytes: p.image.wal.len(),
                snapshot_bytes: 0,
                identical: false,
            });
            continue;
        };
        let yb = serve_bits(&mut srv, h2, &x);
        let store = srv.durable_store(h2).expect("recovered matrix is durable");
        let checkpointed = store.wal_bytes() == 0 && store.snapshot_bytes() > 0;
        let identical = rep.clean()
            && srv.epoch(h2) == Some(p.epoch)
            && fp_key(&srv, h2) == p.fp_key
            && yb == p.y_bits;
        identical_points += identical as usize;
        checkpointed_points += checkpointed as usize;
        crash_points.push(CrashRow {
            label: p.label.clone(),
            epoch: p.epoch,
            snapshot_epoch: rep.snapshot_epoch,
            replayed: rep.replayed,
            duplicates: rep.duplicates_skipped,
            replay_us,
            wal_bytes: p.image.wal.len(),
            snapshot_bytes: p.image.slots[p.image.newest_slot].as_ref().map_or(0, Vec::len),
            identical: identical && checkpointed,
        });
    }

    // ---- Phase 3: the reopened server meets the serving bar — every
    // read oracle-verified against the tip epoch, and evolution resumes.
    let mut reopened = fresh_server(gpu, &probe);
    let reopen = reopened.recover_evolving(&final_image, policy);
    let tip_truth = truth_chain.last().expect("chain non-empty");
    let reads_offered = cfg.reads.max(1) as u64;
    let mut reads_verified = 0u64;
    let mut resumed = false;
    if let Ok((h3, _)) = &reopen {
        let h3 = *h3;
        for i in 0..cfg.reads.max(1) {
            let xi = traffic_x(cfg.nodes, i);
            let Ok(ok) = reopened.serve(Request {
                matrix: h3,
                x: xi.clone(),
                deadline_s: None,
            }) else {
                continue;
            };
            let oracle = tip_truth.spmv_f64(&xi).expect("oracle dims match");
            let torn = ok.y.iter().zip(&oracle).enumerate().any(|(r, (a, e))| {
                ((*a as f64) - e).abs() > oracle_tol(tip_truth, r, *e)
            });
            reads_verified += !torn as u64;
        }
        let next = value_only_batch(tip_truth, &mut rng, 4);
        resumed = reopened.update(h3, &next).is_ok()
            && reopened.epoch(h3) == Some(tip_epoch + 1);
    }

    // ---- Phase 4: the storage fault model against the final image.
    let mut injections = Vec::new();
    for fault in StorageFault::ALL {
        for s in 0..cfg.fault_seeds.max(1) {
            let seed = cfg.seed ^ (s as u64).wrapping_mul(0x9e37_79b9);
            let mut img = final_image.clone();
            let Some(mutation) = inject(&mut img, fault, seed) else {
                injections.push(InjectionRow {
                    fault: fault.name(),
                    seed,
                    mutation: "injected: nothing (fault not injectable on this image)".into(),
                    recovery: "-".into(),
                    pass: false,
                });
                continue;
            };
            let mut srv = fresh_server(gpu, &probe);
            let row = match srv.recover_evolving(&img, policy) {
                Ok((h2, rep)) => {
                    let e = rep.recovered_epoch;
                    let yb = serve_bits(&mut srv, h2, &x);
                    let bits_match = (e as usize) < y_bits_by_epoch.len()
                        && yb == y_bits_by_epoch[e as usize];
                    let contract = match fault {
                        StorageFault::TornTail | StorageFault::MidFrameTruncation => {
                            matches!(rep.tail_error, Some(WalError::TornFrame { .. }))
                                && e < tip_epoch
                        }
                        StorageFault::WalBitRot => rep.tail_error.is_some() && e <= tip_epoch,
                        StorageFault::SnapshotBitRot => rep.fell_back && e == tip_epoch,
                        StorageFault::DuplicateFrame => {
                            rep.tail_error.is_none() && e == tip_epoch
                        }
                        StorageFault::LostFsync => {
                            matches!(rep.tail_error, Some(WalError::SeqGap { .. }))
                                && e < tip_epoch
                        }
                    };
                    let errs: Vec<String> = rep
                        .snapshot_errors
                        .iter()
                        .map(|e| format!("injected: {e}"))
                        .chain(rep.tail_error.iter().map(|e| format!("injected: {e}")))
                        .collect();
                    InjectionRow {
                        fault: fault.name(),
                        seed,
                        mutation: format!("injected: {mutation}"),
                        recovery: format!(
                            "epoch {e} via slot {} (replayed {}){}{}",
                            rep.used_slot,
                            rep.replayed,
                            if errs.is_empty() { String::new() } else { format!("; {}", errs.join("; ")) },
                            if bits_match { "" } else { "; SERVED BITS DIVERGED" },
                        ),
                        pass: contract && bits_match,
                    }
                }
                Err(e) => InjectionRow {
                    fault: fault.name(),
                    seed,
                    mutation: format!("injected: {mutation}"),
                    recovery: format!("injected: fatal {e}"),
                    pass: false,
                },
            };
            injections.push(row);
        }
    }

    // ---- Verdict.
    let mut checks = Vec::new();
    checks.push(Check {
        name: "kill at every WAL record recovers bit-for-bit",
        pass: identical_points == points.len() && !points.is_empty(),
        detail: format!(
            "{identical_points}/{} crash points epoch+fingerprint+y-bit identical",
            points.len()
        ),
    });
    checks.push(Check {
        name: "recovery re-checkpoints before serving resumes",
        pass: checkpointed_points == points.len(),
        detail: format!(
            "{checkpointed_points}/{} reopened stores hold an empty log and a tip snapshot",
            points.len()
        ),
    });
    checks.push(Check {
        name: "rolled-back update never reaches the log",
        pass: rollback_attempted && !rollback_reached_log,
        detail: "injected mid-run fault rolled back with log, snapshot, and counters unchanged"
            .into(),
    });
    let tail_faults = [
        StorageFault::TornTail.name(),
        StorageFault::MidFrameTruncation.name(),
        StorageFault::WalBitRot.name(),
        StorageFault::LostFsync.name(),
    ];
    let (tail_pass, tail_total) = injections
        .iter()
        .filter(|r| tail_faults.contains(&r.fault))
        .fold((0usize, 0usize), |(p, t), r| (p + r.pass as usize, t + 1));
    checks.push(Check {
        name: "corrupt tails truncate cleanly to a verified epoch",
        pass: tail_total > 0 && tail_pass == tail_total,
        detail: format!(
            "{tail_pass}/{tail_total} log-damage injections surfaced typed errors and served a verified prior epoch"
        ),
    });
    let slot_faults = [StorageFault::SnapshotBitRot.name(), StorageFault::DuplicateFrame.name()];
    let (slot_pass, slot_total) = injections
        .iter()
        .filter(|r| slot_faults.contains(&r.fault))
        .fold((0usize, 0usize), |(p, t), r| (p + r.pass as usize, t + 1));
    checks.push(Check {
        name: "corrupt snapshots fall back; duplicate frames are idempotent",
        pass: slot_total > 0 && slot_pass == slot_total,
        detail: format!(
            "{slot_pass}/{slot_total} slot/duplicate injections reached the tip epoch bit-for-bit"
        ),
    });
    checks.push(Check {
        name: "reopened server serves with zero torn reads and resumes evolution",
        pass: reopen.is_ok() && reads_verified == reads_offered && resumed,
        detail: format!(
            "{reads_verified}/{reads_offered} reads oracle-verified at epoch {tip_epoch}, next commit reached epoch {}",
            tip_epoch + 1
        ),
    });

    RecoverReport { crash_points, injections, reads_verified, reads_offered, checks }
}

/// Runs the scenario on `gpu` and renders the crash-point ledger, the
/// injection ledger, the verdict checks, and the one-line `RECOVER`
/// verdict string.
pub fn recover_report(
    gpu: &GpuConfig,
    cfg: &RecoverScenario,
) -> (Vec<Table>, Verdict, RecoverReport) {
    let report = run_recover(gpu, cfg);

    let mut ledger = Table::new(
        format!("Kill-at-every-record recovery ledger ({})", gpu.name),
        &["crash point", "epoch", "snap", "replayed", "dup", "recover_us", "wal B", "snap B", "bit-identical"],
    );
    for r in &report.crash_points {
        ledger.push_row(vec![
            r.label.clone(),
            r.epoch.to_string(),
            r.snapshot_epoch.to_string(),
            r.replayed.to_string(),
            r.duplicates.to_string(),
            format!("{:.0}", r.replay_us),
            r.wal_bytes.to_string(),
            r.snapshot_bytes.to_string(),
            if r.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let mut faults = Table::new(
        format!("Storage fault injections ({})", gpu.name),
        &["fault", "seed", "mutation", "recovery", "pass"],
    );
    for r in &report.injections {
        faults.push_row(vec![
            r.fault.to_string(),
            r.seed.to_string(),
            r.mutation.clone(),
            r.recovery.clone(),
            if r.pass { "yes" } else { "NO" }.to_string(),
        ]);
    }

    let mut checks = Table::new(
        format!("Durability verdict checks ({})", gpu.name),
        &["check", "pass", "evidence"],
    );
    for c in &report.checks {
        checks.push_row(vec![
            c.name.to_string(),
            if c.pass { "yes" } else { "NO" }.to_string(),
            c.detail.clone(),
        ]);
    }

    let verdict = Verdict::new(report.ok(), format!(
        "RECOVER {}: {} crash points bit-identical, {} fault injections held the contract, {}/{} reopened reads verified, {}/{} checks passed",
        if report.ok() { "OK" } else { "FAIL" },
        report.crash_points.iter().filter(|r| r.identical).count(),
        report.injections.iter().filter(|r| r.pass).count(),
        report.reads_verified,
        report.reads_offered,
        report.checks.iter().filter(|c| c.pass).count(),
        report.checks.len(),
    ));
    (vec![ledger, faults, checks], verdict, report)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the machine-readable `recover_report.json` body: the
/// scenario, every crash point with its replay duration and snapshot
/// size, every injection, and the verdict.
pub fn recover_report_json(
    gpu: &GpuConfig,
    cfg: &RecoverScenario,
    verdict: &str,
    report: &RecoverReport,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"gpu\": {},\n  \"scenario\": {{\"seed\": {}, \"nodes\": {}, \"edges\": {}, \"updates\": {}, \"snapshot_every\": {}, \"fault_seeds\": {}, \"reads\": {}}},\n",
        json_str(gpu.name), cfg.seed, cfg.nodes, cfg.edges, cfg.updates, cfg.snapshot_every, cfg.fault_seeds, cfg.reads,
    ));
    out.push_str("  \"crash_points\": [\n");
    for (i, r) in report.crash_points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": {}, \"epoch\": {}, \"snapshot_epoch\": {}, \"replayed\": {}, \"duplicates_skipped\": {}, \"recover_us\": {:.1}, \"wal_bytes\": {}, \"snapshot_bytes\": {}, \"bit_identical\": {}}}{}\n",
            json_str(&r.label), r.epoch, r.snapshot_epoch, r.replayed, r.duplicates, r.replay_us,
            r.wal_bytes, r.snapshot_bytes, r.identical,
            if i + 1 < report.crash_points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"injections\": [\n");
    for (i, r) in report.injections.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fault\": {}, \"seed\": {}, \"mutation\": {}, \"recovery\": {}, \"pass\": {}}}{}\n",
            json_str(r.fault), r.seed, json_str(&r.mutation), json_str(&r.recovery), r.pass,
            if i + 1 < report.injections.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"checks\": [\n");
    for (i, c) in report.checks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"pass\": {}, \"evidence\": {}}}{}\n",
            json_str(c.name), c.pass, json_str(&c.detail),
            if i + 1 < report.checks.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("  ],\n  \"verdict\": {}\n}}\n", json_str(verdict)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_passes_every_check() {
        let cfg = RecoverScenario::smoke();
        let (tables, verdict, report) = recover_report(&GpuConfig::l40(), &cfg);
        for c in &report.checks {
            assert!(c.pass, "check failed: {} — {}", c.name, c.detail);
        }
        assert!(verdict.pass, "{verdict}");
        assert!(verdict.line.starts_with("RECOVER OK"), "{verdict}");
        assert_eq!(tables.len(), 3);
        // Kill points: one per committed epoch, plus registration, plus
        // one synthesized pre-snapshot point per installed checkpoint.
        assert!(report.crash_points.len() > cfg.updates);
        assert_eq!(
            report.injections.len(),
            StorageFault::ALL.len() * cfg.fault_seeds
        );
        // The torn-read bar covers every offered read.
        assert_eq!(report.reads_verified, report.reads_offered);
    }

    #[test]
    fn wal_error_text_only_appears_on_injected_lines() {
        // CI greps the report for `WalError` outside `injected:` lines;
        // hold the renderer to that contract here too.
        let (tables, verdict, _) = recover_report(&GpuConfig::l40(), &RecoverScenario::smoke());
        let text = format!("{}\n{}\n{}\n{verdict}", tables[0], tables[1], tables[2]);
        for line in text.lines() {
            if line.contains("WalError") {
                assert!(line.contains("injected:"), "uninjected WalError leaked: {line}");
            }
        }
    }

    #[test]
    fn json_report_is_complete_and_balanced() {
        let cfg = RecoverScenario::smoke();
        let (_, verdict, report) = recover_report(&GpuConfig::l40(), &cfg);
        let json = recover_report_json(&GpuConfig::l40(), &cfg, &verdict.line, &report);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"crash_points\""));
        assert!(json.contains("\"recover_us\""));
        assert!(json.contains("\"snapshot_bytes\""));
        assert!(json.contains("\"injections\""));
        assert!(json.contains("\"verdict\""));
        for r in &report.crash_points {
            assert!(json.contains(&format!("\"label\": {}", super::json_str(&r.label))));
        }
    }
}
