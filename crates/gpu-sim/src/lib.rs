//! # spaden-gpusim
//!
//! A functional SIMT + tensor-core simulator, built as the hardware
//! substitute for the Spaden reproduction (see DESIGN.md §1).
//!
//! The simulator is *functional* (it computes real results, so every kernel
//! is testable against the CPU reference SpMV) and *counting* (every global
//! memory access passes through a warp coalescer and a set-associative L2
//! model; arithmetic, MMA and atomic instructions are tallied). An analytic
//! roofline model ([`timing`]) turns the counters into simulated time for
//! the two GPUs of the paper's evaluation ([`GpuConfig::l40`],
//! [`GpuConfig::v100`]).
//!
//! The centrepiece is [`fragment`]: a model of the WMMA 16×16 fragment with
//! the register↔lane↔element mapping the paper reverse-engineers in
//! Section 3 (Figures 1–2). Spaden's kernels drive it through direct
//! register access, exactly as on real hardware.

// Kernels are written in warp-lockstep style: explicit `for lane in
// 0..32` loops indexing parallel per-lane arrays, mirroring the CUDA
// code they model. The range-loop lint fights that idiom.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod counters;
pub mod device;
pub mod exec;
pub mod fault;
pub mod fragment;
pub mod half;
pub mod inject;
pub mod memory;
pub mod mma;
pub mod san;
pub mod timing;

pub use config::GpuConfig;
pub use counters::{DeviceCounters, KernelCounters};
pub use device::{DeviceEvent, DeviceFaultConfig, SimDevice};
pub use exec::{Gpu, WarpCtx, WARP_SIZE};
pub use fault::{FaultConfig, FaultInjector};
pub use fragment::{FragKind, Fragment, FRAG_DIM, REGS_PER_LANE};
pub use half::{ConvertHazard, F16};
pub use inject::InjectionConfig;
pub use memory::{DeviceBuffer, DeviceOutput, DeviceScalar};
pub use san::{HazardKind, SanConfig, SanReport};
pub use timing::{estimate_time, SimTime};
