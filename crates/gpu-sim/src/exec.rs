//! Kernel execution: warp-lockstep functional simulation with full traffic
//! accounting.
//!
//! Kernels are closures invoked once per warp with a [`WarpCtx`], which
//! provides warp-wide memory operations (gather/scatter/atomics, each
//! passing through the coalescer and L2 model), tensor-core MMA issue, and
//! instruction counting. Warps run in parallel via rayon across a fixed
//! number of L2 *shards* — contiguous warp ranges sharing one slice of the
//! L2 model — so results and counters are deterministic regardless of the
//! host thread count (the one exception is the float-accumulation order of
//! cross-warp atomics, as on real hardware).

use crate::config::GpuConfig;
use crate::counters::KernelCounters;
use crate::fragment::Fragment;
use crate::memory::{
    coalesce_into, DeviceBuffer, DeviceOutput, DeviceScalar, L2Cache, SECTOR_BYTES,
};
use rayon::prelude::*;

/// Threads per warp.
pub const WARP_SIZE: usize = 32;

/// Number of L2 shards / parallel execution lanes. Fixed (not tied to host
/// threads) so counter results are reproducible.
const SHARDS: usize = 16;

/// A simulated GPU: configuration plus a bump allocator handing out
/// non-overlapping virtual addresses for device buffers.
#[derive(Debug)]
pub struct Gpu {
    /// Architectural parameters (timing model inputs).
    pub config: GpuConfig,
    next_addr: std::sync::atomic::AtomicU64,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        Gpu { config, next_addr: std::sync::atomic::AtomicU64::new(0x1000_0000) }
    }

    fn bump(&self, bytes: u64) -> u64 {
        // 256-byte allocation alignment, like cudaMalloc.
        let aligned = bytes.div_ceil(256) * 256;
        self.next_addr.fetch_add(aligned, std::sync::atomic::Ordering::Relaxed)
    }

    /// Copies host data into a fresh device buffer.
    pub fn alloc<T: DeviceScalar>(&self, data: Vec<T>) -> DeviceBuffer<T> {
        let base = self.bump(data.len() as u64 * T::BYTES);
        DeviceBuffer::with_base(base, data)
    }

    /// Allocates a zeroed output vector.
    pub fn alloc_output(&self, len: usize) -> DeviceOutput {
        let base = self.bump(len as u64 * 4);
        DeviceOutput::with_base(base, len)
    }

    /// Launches `nwarps` instances of `kernel` and returns merged counters.
    pub fn launch<F>(&self, nwarps: usize, kernel: F) -> KernelCounters
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        let shard_l2 = (self.config.l2_bytes / SHARDS).max(4096);
        let mut merged = (0..SHARDS)
            .into_par_iter()
            .map(|s| {
                let lo = nwarps * s / SHARDS;
                let hi = nwarps * (s + 1) / SHARDS;
                let mut ctx = WarpCtx {
                    warp_id: 0,
                    nwarps,
                    counters: KernelCounters::default(),
                    l2: L2Cache::new(shard_l2),
                    scratch: Vec::with_capacity(64),
                };
                for w in lo..hi {
                    ctx.warp_id = w;
                    kernel(&mut ctx);
                }
                ctx.counters
            })
            .reduce(KernelCounters::default, |mut a, b| {
                a.merge(&b);
                a
            });
        merged.warps = nwarps as u64;
        merged
    }
}

/// Per-warp execution context: the only way kernels touch device memory,
/// so every access is coalesced, cached and counted.
pub struct WarpCtx {
    /// This warp's global index.
    pub warp_id: usize,
    /// Total warps in the launch.
    pub nwarps: usize,
    /// Event counters for this shard.
    pub counters: KernelCounters,
    l2: L2Cache,
    scratch: Vec<u64>,
}

impl WarpCtx {
    /// Registers `n` warp-wide arithmetic/logic instructions.
    #[inline]
    pub fn ops(&mut self, n: u64) {
        self.counters.cuda_ops += n;
    }

    fn account_read_sectors(&mut self) {
        for i in 0..self.scratch.len() {
            let sector = self.scratch[i];
            self.counters.sectors_read += 1;
            if self.l2.access_sector(sector) {
                self.counters.l2_hits += 1;
            } else {
                self.counters.dram_read_bytes += SECTOR_BYTES;
            }
        }
    }

    /// Warp-wide gather: active lane `l` reads `buf[idx[l]]`. One load
    /// instruction; transactions are the coalesced unique sectors.
    pub fn gather<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter().flatten().map(|&i| buf.addr(i as usize)),
            &mut self.scratch,
        );
        self.account_read_sectors();
        let mut out = [T::default(); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                out[lane] = buf.get(*i as usize);
            }
        }
        out
    }

    /// Warp-wide gather that bypasses the L2 model: every coalesced sector
    /// goes to DRAM. Models pre-`__ldg`/texture-path kernels (2015-era
    /// LightSpMV) whose irregular reads get no cache reuse.
    pub fn gather_nocache<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter().flatten().map(|&i| buf.addr(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_read += n;
        self.counters.dram_read_bytes += n * SECTOR_BYTES;
        let mut out = [T::default(); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                out[lane] = buf.get(*i as usize);
            }
        }
        out
    }

    /// Uniform (broadcast) read: all lanes read the same element. One load
    /// instruction, one sector.
    pub fn read<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.counters.load_insts += 1;
        self.scratch.clear();
        self.scratch.push(buf.addr(i) / SECTOR_BYTES);
        self.account_read_sectors();
        buf.get(i)
    }

    /// Consecutive-pair read covering two elements per active lane
    /// (`buf[i]`, `buf[i+1]`) — the access shape of Algorithm 2's value
    /// loads. One load instruction (128-bit-style vectorised access).
    pub fn gather_pair<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [(T, T); WARP_SIZE] {
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter()
                .flatten()
                .flat_map(|&i| [buf.addr(i as usize), buf.addr(i as usize + 1)]),
            &mut self.scratch,
        );
        self.account_read_sectors();
        let mut out = [(T::default(), T::default()); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                out[lane] = (buf.get(*i as usize), buf.get(*i as usize + 1));
            }
        }
        out
    }

    /// Warp-wide scatter store: active lane `l` writes `val` to
    /// `out[idx]`. Writes stream through L2 to DRAM (no read allocation).
    pub fn scatter(&mut self, out: &DeviceOutput, writes: &[Option<(u32, f32)>; WARP_SIZE]) {
        self.counters.store_insts += 1;
        coalesce_into(
            writes.iter().flatten().map(|&(i, _)| out.addr(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_written += n;
        self.counters.dram_write_bytes += n * SECTOR_BYTES;
        for w in writes.iter().flatten() {
            out.store(w.0 as usize, w.1);
        }
    }

    /// Warp-wide atomic float add (CUDA `atomicAdd`): one atomic operation
    /// per active lane, write traffic for the unique sectors.
    pub fn atomic_add(&mut self, out: &DeviceOutput, writes: &[Option<(u32, f32)>; WARP_SIZE]) {
        let active = writes.iter().flatten().count() as u64;
        self.counters.atomic_ops += active;
        coalesce_into(
            writes.iter().flatten().map(|&(i, _)| out.addr(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_written += n;
        self.counters.dram_write_bytes += n * SECTOR_BYTES;
        for w in writes.iter().flatten() {
            out.fetch_add(w.0 as usize, w.1);
        }
    }

    /// Issues one `m16n16k16` MMA and computes `d = a×b + c`.
    pub fn mma_16x16x16(&mut self, d: &mut Fragment, a: &Fragment, b: &Fragment, c: &Fragment) {
        self.counters.mma_m16n16k16 += 1;
        crate::mma::mma_sync(d, a, b, c);
    }

    /// Registers `n` issued `m8n8k4` MMAs (DASP's primitive; its kernels
    /// compute with [`crate::mma::mma_m8n8k4`] directly).
    pub fn mma_m8n8k4_issue(&mut self, n: u64) {
        self.counters.mma_m8n8k4 += n;
    }

    /// Registers `bytes` staged through shared memory (the conventional
    /// WMMA load path that the paper's direct register access eliminates).
    /// Counts the store-to-smem and load-from-smem instruction pair.
    pub fn smem_stage(&mut self, bytes: u64) {
        self.counters.smem_bytes += bytes;
        // One 32-lane store + one load instruction per 128 staged bytes.
        self.counters.cuda_ops += 2 * bytes.div_ceil(128);
    }

    /// Warp tree-reduction (`__shfl_down_sync` ladder): returns the sum of
    /// all 32 lane values; 5 shuffle+add steps.
    pub fn reduce_sum(&mut self, vals: &[f32; WARP_SIZE]) -> f32 {
        self.counters.cuda_ops += 5;
        let mut v = *vals;
        let mut width = WARP_SIZE / 2;
        while width > 0 {
            for i in 0..width {
                v[i] += v[i + width];
            }
            width /= 2;
        }
        v[0]
    }

    /// Segmented tree-reduction: sums each aligned group of `group` lanes
    /// (power of two); lane `l` receives the sum of its group.
    pub fn segmented_reduce_sum(
        &mut self,
        vals: &[f32; WARP_SIZE],
        group: usize,
    ) -> [f32; WARP_SIZE] {
        assert!(group.is_power_of_two() && group <= WARP_SIZE);
        self.counters.cuda_ops += group.trailing_zeros() as u64;
        let mut v = *vals;
        let mut width = group / 2;
        while width > 0 {
            let mut next = v;
            for l in 0..WARP_SIZE {
                let base = l / group * group;
                let pos = l % group;
                let partner = base + (pos + width) % group;
                next[l] = v[l] + v[partner];
            }
            v = next;
            width /= 2;
        }
        v
    }
}

/// Builds a lane-index array from an iterator of at most 32 indices
/// (remaining lanes inactive) — a small kernel-authoring convenience.
pub fn lanes_from(iter: impl IntoIterator<Item = u32>) -> [Option<u32>; WARP_SIZE] {
    let mut out = [None; WARP_SIZE];
    for (l, i) in iter.into_iter().take(WARP_SIZE).enumerate() {
        out[l] = Some(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::l40())
    }

    #[test]
    fn alloc_assigns_disjoint_addresses() {
        let g = gpu();
        let a = g.alloc(vec![0f32; 100]);
        let b = g.alloc(vec![0u64; 10]);
        // a spans 400 bytes from its base; b must start past it.
        assert!(b.addr(0) >= a.addr(99) + 4);
    }

    #[test]
    fn unit_stride_gather_counts_four_sectors() {
        let g = gpu();
        let buf = g.alloc((0..64u32).map(|i| i as f32).collect::<Vec<_>>());
        let c = g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            let vals = ctx.gather(&buf, &idx);
            assert_eq!(vals[5], 5.0);
        });
        assert_eq!(c.load_insts, 1);
        assert_eq!(c.sectors_read, 4); // 32 f32 = 128 B = 4 sectors
        assert_eq!(c.dram_read_bytes, 128);
        assert_eq!(c.warps, 1);
    }

    #[test]
    fn strided_gather_is_uncoalesced() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 32 * 32]);
        let c = g.launch(1, |ctx| {
            let idx = lanes_from((0..32u32).map(|i| i * 32)); // 128 B stride
            ctx.gather(&buf, &idx);
        });
        assert_eq!(c.sectors_read, 32);
    }

    #[test]
    fn l2_hit_on_repeat_access() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 32]);
        let c = g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            ctx.gather(&buf, &idx);
            ctx.gather(&buf, &idx);
        });
        assert_eq!(c.sectors_read, 8);
        assert_eq!(c.l2_hits, 4, "second gather fully hits");
        assert_eq!(c.dram_read_bytes, 128, "only first gather reaches DRAM");
    }

    #[test]
    fn inactive_lanes_skip_traffic() {
        let g = gpu();
        let buf = g.alloc(vec![2.0f32; 64]);
        let c = g.launch(1, |ctx| {
            let mut idx = [None; WARP_SIZE];
            idx[3] = Some(8u32);
            let vals = ctx.gather(&buf, &idx);
            assert_eq!(vals[3], 2.0);
            assert_eq!(vals[0], 0.0, "inactive lane default");
        });
        assert_eq!(c.sectors_read, 1);
    }

    #[test]
    fn gather_pair_reads_two_consecutive() {
        let g = gpu();
        let buf = g.alloc((0..64u32).map(|i| i as f32).collect::<Vec<_>>());
        g.launch(1, |ctx| {
            let idx = lanes_from((0..32u32).map(|i| i * 2));
            let pairs = ctx.gather_pair(&buf, &idx);
            assert_eq!(pairs[3], (6.0, 7.0));
        });
    }

    #[test]
    fn scatter_writes_and_counts() {
        let g = gpu();
        let out = g.alloc_output(64);
        let c = g.launch(1, |ctx| {
            let mut w = [None; WARP_SIZE];
            for l in 0..16 {
                w[l] = Some((l as u32, l as f32));
            }
            ctx.scatter(&out, &w);
        });
        assert_eq!(c.store_insts, 1);
        assert_eq!(c.sectors_written, 2); // 16 f32 = 64 B
        assert_eq!(c.dram_write_bytes, 64);
        assert_eq!(out.load(7), 7.0);
    }

    #[test]
    fn atomics_accumulate_across_warps() {
        let g = gpu();
        let out = g.alloc_output(4);
        let c = g.launch(64, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((1u32, 1.0f32));
            ctx.atomic_add(&out, &w);
        });
        assert_eq!(c.atomic_ops, 64);
        assert_eq!(out.load(1), 64.0);
    }

    #[test]
    fn counters_are_deterministic_across_launches() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 10_000]);
        let run = || {
            g.launch(200, |ctx| {
                let base = (ctx.warp_id * 37 % 9000) as u32;
                let idx = lanes_from(base..base + 32);
                ctx.gather(&buf, &idx);
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reduce_sum_is_exact_tree() {
        let g = gpu();
        g.launch(1, |ctx| {
            let mut v = [0.0f32; WARP_SIZE];
            for (i, x) in v.iter_mut().enumerate() {
                *x = (i + 1) as f32;
            }
            assert_eq!(ctx.reduce_sum(&v), (32 * 33 / 2) as f32);
        });
    }

    #[test]
    fn segmented_reduce_groups_of_four() {
        let g = gpu();
        g.launch(1, |ctx| {
            let mut v = [0.0f32; WARP_SIZE];
            for (i, x) in v.iter_mut().enumerate() {
                *x = i as f32;
            }
            let r = ctx.segmented_reduce_sum(&v, 4);
            // Group 0 = 0+1+2+3 = 6, each lane of the group sees the sum.
            assert_eq!(&r[0..4], &[6.0; 4]);
            assert_eq!(&r[4..8], &[22.0; 4]);
            assert_eq!(r[31], (28 + 29 + 30 + 31) as f32);
        });
    }

    #[test]
    fn mma_issue_is_counted_and_computed() {
        use crate::fragment::{FragKind, Fragment};
        let g = gpu();
        let c = g.launch(1, |ctx| {
            let mut a = Fragment::new(FragKind::MatrixA);
            a.set(0, 0, 2.0);
            let mut b = Fragment::new(FragKind::MatrixB);
            b.set(0, 0, 3.0);
            let acc = Fragment::new(FragKind::Accumulator);
            let mut d = Fragment::new(FragKind::Accumulator);
            ctx.mma_16x16x16(&mut d, &a, &b, &acc);
            assert_eq!(d.get(0, 0), 6.0);
        });
        assert_eq!(c.mma_m16n16k16, 1);
    }

    #[test]
    fn smem_staging_costs_instructions() {
        let g = gpu();
        let c = g.launch(1, |ctx| ctx.smem_stage(512));
        assert_eq!(c.smem_bytes, 512);
        assert_eq!(c.cuda_ops, 8);
    }

    #[test]
    fn shards_cover_all_warps_exactly_once() {
        let g = gpu();
        let out = g.alloc_output(1000);
        g.launch(1000, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((ctx.warp_id as u32, 1.0f32));
            ctx.atomic_add(&out, &w);
        });
        assert!(out.to_vec().iter().all(|&v| v == 1.0));
    }
}
