//! Kernel execution: warp-lockstep functional simulation with full traffic
//! accounting.
//!
//! Kernels are closures invoked once per warp with a [`WarpCtx`], which
//! provides warp-wide memory operations (gather/scatter/atomics, each
//! passing through the coalescer and L2 model), tensor-core MMA issue, and
//! instruction counting. Warps run across a fixed number of L2 *shards* —
//! contiguous warp ranges sharing one slice of the L2 model, executed in
//! parallel when the `parallel` feature is on — so results and counters
//! are deterministic regardless of the host thread count (the one
//! exception is the float-accumulation order of cross-warp atomics, as on
//! real hardware).

use crate::config::GpuConfig;
use crate::counters::KernelCounters;
use crate::fault::FaultInjector;
use crate::fragment::Fragment;
use crate::memory::{
    coalesce_into, DeviceBuffer, DeviceOutput, DeviceScalar, L2Cache, SECTOR_BYTES,
};
use crate::san::{self, SanCtx, SanReport, ShadowState};
use spaden_sparse::par;

/// Threads per warp.
pub const WARP_SIZE: usize = 32;

/// Number of L2 shards / parallel execution lanes. Fixed (not tied to host
/// threads) so counter results are reproducible.
const SHARDS: usize = 16;

/// A simulated GPU: configuration plus a bump allocator handing out
/// non-overlapping virtual addresses for device buffers.
#[derive(Debug)]
pub struct Gpu {
    /// Architectural parameters (timing model inputs).
    pub config: GpuConfig,
    next_addr: std::sync::atomic::AtomicU64,
    // Monotonic launch counter, used to salt the per-warp fault RNG so
    // repeated launches (e.g. ABFT recovery retries) draw independent
    // fault sites. Only advanced when fault injection is enabled.
    launch_salt: std::sync::atomic::AtomicU64,
    // SimSan shadow state: allocation table, report sink and numeric
    // tallies. `Some` exactly when `config.san.enabled`.
    shadow: Option<ShadowState>,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        let shadow = config.san.enabled.then(ShadowState::default);
        Gpu {
            config,
            next_addr: std::sync::atomic::AtomicU64::new(0x1000_0000),
            launch_salt: std::sync::atomic::AtomicU64::new(0),
            shadow,
        }
    }

    fn bump(&self, bytes: u64) -> u64 {
        // 256-byte allocation alignment, like cudaMalloc.
        self.next_addr.fetch_add(san::aligned256(bytes), std::sync::atomic::Ordering::Relaxed)
    }

    /// Copies host data into a fresh device buffer.
    pub fn alloc<T: DeviceScalar>(&self, data: Vec<T>) -> DeviceBuffer<T> {
        let bytes = data.len() as u64 * T::BYTES;
        let base = self.bump(bytes);
        if let Some(sh) = &self.shadow {
            sh.register(base, bytes, san::aligned256(bytes));
        }
        DeviceBuffer::with_base(base, data)
    }

    /// Allocates a zeroed output vector.
    pub fn alloc_output(&self, len: usize) -> DeviceOutput {
        let bytes = len as u64 * 4;
        let base = self.bump(bytes);
        if let Some(sh) = &self.shadow {
            sh.register(base, bytes, san::aligned256(bytes));
        }
        DeviceOutput::with_base(base, len)
    }

    /// Releases a device buffer in the SimSan shadow table (a no-op with
    /// the sanitizer off — the simulator itself never reuses addresses).
    /// Subsequent kernel accesses are use-after-free; a second `free` of
    /// the same buffer is allocator misuse.
    pub fn free<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>) {
        if let Some(sh) = &self.shadow {
            sh.free(buf.base());
        }
    }

    /// [`Gpu::free`] for output vectors.
    pub fn free_output(&self, out: &DeviceOutput) {
        if let Some(sh) = &self.shadow {
            sh.free(out.base());
        }
    }

    /// True when SimSan is on for this GPU.
    pub fn san_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Drains every sanitizer report accumulated so far (empty when
    /// SimSan is off).
    pub fn take_san_reports(&self) -> Vec<SanReport> {
        self.shadow.as_ref().map(|sh| sh.take_reports()).unwrap_or_default()
    }

    /// Cumulative `(f16 overflow, f16 underflow, NaN)` hazard counts.
    /// Monotonic — engines snapshot around a run to attribute hazards to
    /// it without consuming the report sink.
    pub fn san_numeric_counts(&self) -> (u64, u64, u64) {
        self.shadow.as_ref().map(|sh| sh.numeric_counts()).unwrap_or_default()
    }

    /// Launches `nwarps` instances of `kernel` and returns merged counters.
    pub fn launch<F>(&self, nwarps: usize, kernel: F) -> KernelCounters
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        let shard_l2 = (self.config.l2_bytes / SHARDS).max(4096);
        let faults = self.config.faults;
        let salt = if faults.enabled() {
            self.launch_salt.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        } else {
            0
        };
        // With SimSan on, snapshot the allocation table once per launch
        // (kernels cannot allocate mid-launch), so per-warp checks are
        // lock-free and the hot path stays untouched when it is off.
        let san_cfg = self.config.san;
        let san_allocs = self.shadow.as_ref().map(|sh| sh.snapshot());
        let results = par::map_indexed(SHARDS, |s| {
            let lo = nwarps * s / SHARDS;
            let hi = nwarps * (s + 1) / SHARDS;
            let mut ctx = WarpCtx {
                warp_id: 0,
                nwarps,
                counters: KernelCounters::default(),
                l2: L2Cache::new(shard_l2),
                scratch: Vec::with_capacity(64),
                injector: None,
                san: san_allocs.as_ref().map(|a| SanCtx::new(san_cfg, a.clone())),
            };
            for w in lo..hi {
                ctx.warp_id = w;
                // Seeded per (config seed, launch, warp): independent of
                // host threading and of the shard partition.
                ctx.injector = if faults.enabled() {
                    Some(FaultInjector::for_warp(faults, salt, w as u64))
                } else {
                    None
                };
                if let Some(san) = &mut ctx.san {
                    san.begin_warp(w);
                }
                kernel(&mut ctx);
            }
            (ctx.counters, ctx.san)
        });
        let mut merged = KernelCounters::default();
        let mut reports = Vec::new();
        let mut writes = Vec::new();
        // Shards are merged in fixed order, so report order is the global
        // warp order regardless of host threading.
        for (c, s) in results {
            merged.merge(&c);
            if let Some(s) = s {
                reports.extend(s.reports);
                writes.extend(s.writes);
            }
        }
        merged.warps = nwarps as u64;
        if let Some(sh) = &self.shadow {
            reports.extend(san::cross_warp_conflicts(&mut writes));
            merged.san_reports = reports.len() as u64;
            sh.absorb(reports);
        }
        merged
    }
}

/// Per-warp execution context: the only way kernels touch device memory,
/// so every access is coalesced, cached and counted.
pub struct WarpCtx {
    /// This warp's global index.
    pub warp_id: usize,
    /// Total warps in the launch.
    pub nwarps: usize,
    /// Event counters for this shard.
    pub counters: KernelCounters,
    l2: L2Cache,
    scratch: Vec<u64>,
    injector: Option<FaultInjector>,
    san: Option<SanCtx>,
}

impl WarpCtx {
    /// Registers `n` warp-wide arithmetic/logic instructions.
    #[inline]
    pub fn ops(&mut self, n: u64) {
        self.counters.cuda_ops += n;
    }

    // Hazard injection for one value-type read instruction: perturbs one
    // lane's index past the allocation (OOB) or into the alignment tail
    // (uninit read). The perturbed access is coalesced (real traffic) but
    // suppressed functionally — silent garbage, exactly what SimSan exists
    // to make loud.
    fn inject_read_hazards<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &mut [Option<u32>; WARP_SIZE],
    ) {
        let (active, n) = active_lanes(idx);
        let Some(inj) = self.injector.as_mut() else { return };
        if n == 0 {
            return;
        }
        let oob_rate = inj.config().oob_read_rate;
        let uninit_rate = inj.config().uninit_read_rate;
        let len = buf.len() as u64;
        let alloc_elems = san::aligned256(len * T::BYTES) / T::BYTES;
        if inj.chance(oob_rate) {
            idx[active[inj.below(n)]] = Some(alloc_elems as u32);
            self.counters.faults_injected += 1;
        }
        if inj.chance(uninit_rate) {
            let pad = (alloc_elems - len) as usize;
            if pad > 0 {
                idx[active[inj.below(n)]] = Some((len as usize + inj.below(pad)) as u32);
                self.counters.faults_injected += 1;
            }
        }
    }

    // SimSan check of one warp-wide read instruction (no-op when off).
    fn san_check_read<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
        op: &'static str,
    ) {
        if let Some(s) = &mut self.san {
            s.check_read(
                buf.base(),
                buf.len(),
                T::BYTES,
                idx.iter().enumerate().filter_map(|(l, i)| i.map(|i| (l, i as u64))),
                op,
            );
        }
    }

    // Draws load faults for one value-type gather whose coalesced sectors
    // are currently in `scratch`: one bit-flip trial per sector plus one
    // stuck-lane trial per instruction. Returns choices as indices into
    // the *active* lane set (the caller maps them to physical lanes).
    fn draw_load_faults(&mut self, nactive: usize) -> Option<LoadFaults> {
        let nsectors = self.scratch.len();
        let inj = self.injector.as_mut()?;
        if nactive == 0 {
            return None;
        }
        let flip_rate = inj.config().mem_bit_flip_rate;
        let stuck_rate = inj.config().stuck_lane_rate;
        let mut flips = Vec::new();
        for _ in 0..nsectors {
            if inj.chance(flip_rate) {
                flips.push((inj.below(nactive), inj.next_u64()));
            }
        }
        let stuck = if inj.chance(stuck_rate) { Some(inj.below(nactive)) } else { None };
        if flips.is_empty() && stuck.is_none() {
            return None;
        }
        self.counters.faults_injected += flips.len() as u64 + stuck.is_some() as u64;
        Some(LoadFaults { flips, stuck })
    }

    // Applies drawn load faults to a plain gather result.
    fn corrupt_gather<T: DeviceScalar>(
        &mut self,
        out: &mut [T; WARP_SIZE],
        idx: &[Option<u32>; WARP_SIZE],
    ) {
        let (active, n) = active_lanes(idx);
        if let Some(f) = self.draw_load_faults(n) {
            for (c, r) in f.flips {
                let lane = active[c];
                out[lane] = out[lane].flip_high_bit(r);
            }
            if let Some(c) = f.stuck {
                out[active[c]] = T::default();
            }
        }
    }

    fn account_read_sectors(&mut self) {
        for i in 0..self.scratch.len() {
            let sector = self.scratch[i];
            self.counters.sectors_read += 1;
            if self.l2.access_sector(sector) {
                self.counters.l2_hits += 1;
            } else {
                self.counters.dram_read_bytes += SECTOR_BYTES;
            }
        }
    }

    /// Warp-wide gather: active lane `l` reads `buf[idx[l]]`. One load
    /// instruction; transactions are the coalesced unique sectors.
    pub fn gather<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        let mut local;
        let idx = if T::FLIPPABLE && self.injector.is_some() {
            local = *idx;
            self.inject_read_hazards(buf, &mut local);
            &local
        } else {
            idx
        };
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter().flatten().map(|&i| buf.addr_raw(i as usize)),
            &mut self.scratch,
        );
        self.account_read_sectors();
        self.san_check_read(buf, idx, "gather");
        let mut out = [T::default(); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                if (*i as usize) < buf.len() {
                    out[lane] = buf.get(*i as usize);
                }
            }
        }
        if T::FLIPPABLE && self.injector.is_some() {
            self.corrupt_gather(&mut out, idx);
        }
        out
    }

    /// Warp-wide gather that bypasses the L2 model: every coalesced sector
    /// goes to DRAM. Models pre-`__ldg`/texture-path kernels (2015-era
    /// LightSpMV) whose irregular reads get no cache reuse.
    pub fn gather_nocache<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [T; WARP_SIZE] {
        let mut local;
        let idx = if T::FLIPPABLE && self.injector.is_some() {
            local = *idx;
            self.inject_read_hazards(buf, &mut local);
            &local
        } else {
            idx
        };
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter().flatten().map(|&i| buf.addr_raw(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_read += n;
        self.counters.dram_read_bytes += n * SECTOR_BYTES;
        self.san_check_read(buf, idx, "gather_nocache");
        let mut out = [T::default(); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                if (*i as usize) < buf.len() {
                    out[lane] = buf.get(*i as usize);
                }
            }
        }
        if T::FLIPPABLE && self.injector.is_some() {
            self.corrupt_gather(&mut out, idx);
        }
        out
    }

    /// Uniform (broadcast) read: all lanes read the same element. One load
    /// instruction, one sector.
    pub fn read<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.counters.load_insts += 1;
        self.scratch.clear();
        self.scratch.push(buf.addr_raw(i) / SECTOR_BYTES);
        self.account_read_sectors();
        if let Some(s) = &mut self.san {
            s.check_read(buf.base(), buf.len(), T::BYTES, std::iter::once((0, i as u64)), "read");
        }
        if i < buf.len() {
            buf.get(i)
        } else {
            T::default()
        }
    }

    /// Consecutive-pair read covering two elements per active lane
    /// (`buf[i]`, `buf[i+1]`) — the access shape of Algorithm 2's value
    /// loads. One load instruction (128-bit-style vectorised access).
    pub fn gather_pair<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idx: &[Option<u32>; WARP_SIZE],
    ) -> [(T, T); WARP_SIZE] {
        let mut local;
        let idx = if T::FLIPPABLE && self.injector.is_some() {
            local = *idx;
            self.inject_read_hazards(buf, &mut local);
            &local
        } else {
            idx
        };
        self.counters.load_insts += 1;
        coalesce_into(
            idx.iter()
                .flatten()
                .flat_map(|&i| [buf.addr_raw(i as usize), buf.addr_raw(i as usize + 1)]),
            &mut self.scratch,
        );
        self.account_read_sectors();
        if let Some(s) = &mut self.san {
            s.check_read(
                buf.base(),
                buf.len(),
                T::BYTES,
                idx.iter()
                    .enumerate()
                    .filter_map(|(l, i)| i.map(|i| (l, i as u64)))
                    .flat_map(|(l, i)| [(l, i), (l, i + 1)]),
                "gather_pair",
            );
        }
        let mut out = [(T::default(), T::default()); WARP_SIZE];
        for (lane, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                let i = *i as usize;
                if i + 1 < buf.len() {
                    out[lane] = (buf.get(i), buf.get(i + 1));
                } else if i < buf.len() {
                    out[lane] = (buf.get(i), T::default());
                }
            }
        }
        if T::FLIPPABLE && self.injector.is_some() {
            let (active, n) = active_lanes(idx);
            if let Some(f) = self.draw_load_faults(n) {
                for (c, r) in f.flips {
                    // The high bit of `r` picks which half of the pair.
                    let lane = active[c];
                    if r >> 63 == 0 {
                        out[lane].0 = out[lane].0.flip_high_bit(r);
                    } else {
                        out[lane].1 = out[lane].1.flip_high_bit(r);
                    }
                }
                if let Some(c) = f.stuck {
                    out[active[c]] = (T::default(), T::default());
                }
            }
        }
        out
    }

    /// Warp-wide scatter store: active lane `l` writes `val` to
    /// `out[idx]`. Writes stream through L2 to DRAM (no read allocation).
    pub fn scatter(&mut self, out: &DeviceOutput, writes: &[Option<(u32, f32)>; WARP_SIZE]) {
        self.counters.store_insts += 1;
        let mut local;
        let writes = match self.injector.as_mut() {
            Some(inj) if inj.config().lane_race_rate > 0.0 => {
                local = *writes;
                // Duplicate one active lane's target onto another's: two
                // lanes now store to one element (last writer wins), and
                // the victim's own element silently stays unwritten.
                let rate = inj.config().lane_race_rate;
                let (active, n) = active_lanes_w(&local);
                if n >= 2 && inj.chance(rate) {
                    let ai = inj.below(n);
                    let bi = (ai + 1 + inj.below(n - 1)) % n;
                    let (a, b) = (active[ai], active[bi]);
                    local[b] = Some((local[a].unwrap().0, local[b].unwrap().1));
                    self.counters.faults_injected += 1;
                }
                &local
            }
            _ => writes,
        };
        coalesce_into(
            writes.iter().flatten().map(|&(i, _)| out.addr(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_written += n;
        self.counters.dram_write_bytes += n * SECTOR_BYTES;
        if let Some(s) = &mut self.san {
            s.check_writes(
                out.base(),
                out.len(),
                writes.iter().enumerate().filter_map(|(l, w)| w.map(|(i, _)| (l, i as u64))),
                false,
                "scatter",
            );
        }
        for w in writes.iter().flatten() {
            if (w.0 as usize) < out.len() {
                out.store(w.0 as usize, w.1);
            }
        }
    }

    /// Warp-wide atomic float add (CUDA `atomicAdd`): one atomic operation
    /// per active lane, write traffic for the unique sectors.
    pub fn atomic_add(&mut self, out: &DeviceOutput, writes: &[Option<(u32, f32)>; WARP_SIZE]) {
        let nactive = writes.iter().flatten().count() as u64;
        self.counters.atomic_ops += nactive;
        coalesce_into(
            writes.iter().flatten().map(|&(i, _)| out.addr(i as usize)),
            &mut self.scratch,
        );
        let n = self.scratch.len() as u64;
        self.counters.sectors_written += n;
        self.counters.dram_write_bytes += n * SECTOR_BYTES;
        // Invalid-atomic injection: one lane's add is demoted to a plain
        // store (a non-read-modify-write update — lost-update corruption).
        let demoted = match self.injector.as_mut() {
            Some(inj) if inj.config().invalid_atomic_rate > 0.0 => {
                let rate = inj.config().invalid_atomic_rate;
                let (active, na) = active_lanes_w(writes);
                if na > 0 && inj.chance(rate) {
                    self.counters.faults_injected += 1;
                    Some(active[inj.below(na)])
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(s) = &mut self.san {
            s.check_writes(
                out.base(),
                out.len(),
                writes
                    .iter()
                    .enumerate()
                    .filter_map(|(l, w)| w.map(|(i, _)| (l, i as u64)))
                    .filter(|&(l, _)| Some(l) != demoted),
                true,
                "atomic_add",
            );
            if let Some(lane) = demoted {
                if let Some((i, _)) = writes[lane] {
                    // Log both the atomic intent and the plain act, so the
                    // post-pass reports a deterministic atomic-conflict.
                    s.log_demoted_atomic(out.base(), i as u64, lane);
                }
            }
        }
        for (lane, w) in writes.iter().enumerate() {
            let Some(w) = w else { continue };
            if (w.0 as usize) >= out.len() {
                continue;
            }
            let dropped = match self.injector.as_mut() {
                Some(inj) => {
                    let rate = inj.config().dropped_atomic_rate;
                    inj.chance(rate)
                }
                None => false,
            };
            if dropped {
                // The op was issued and counted; its effect is lost.
                self.counters.faults_injected += 1;
            } else if Some(lane) == demoted {
                out.store(w.0 as usize, w.1);
            } else {
                out.fetch_add(w.0 as usize, w.1);
            }
        }
    }

    /// Issues one `m16n16k16` MMA and computes `d = a×b + c`.
    pub fn mma_16x16x16(&mut self, d: &mut Fragment, a: &Fragment, b: &Fragment, c: &Fragment) {
        self.counters.mma_m16n16k16 += 1;
        crate::mma::mma_sync(d, a, b, c);
        if let Some(s) = &mut self.san {
            // Per-block numeric guard rail: non-finite accumulators.
            s.check_mma_result(&d.regs);
        }
        if let Some(inj) = self.injector.as_mut() {
            let rate = inj.config().fragment_corrupt_rate;
            if inj.chance(rate) {
                let lane = inj.below(WARP_SIZE);
                let reg = inj.below(crate::fragment::REGS_PER_LANE);
                let r = inj.next_u64();
                d.regs[lane][reg] = d.regs[lane][reg].flip_high_bit(r);
                self.counters.faults_injected += 1;
            }
        }
    }

    /// Warp-wide fragment pair-write: lane `l` stores `vals[l]` into its
    /// registers `[reg_base]`, `[reg_base + 1]` — the direct register
    /// access of Algorithm 3 lines 6-7. Adds no counters (the kernels bill
    /// register moves through [`WarpCtx::ops`], exactly as before), but
    /// with SimSan on the register base is checked against the
    /// reverse-engineered m16n16k16 mapping and every value is classified
    /// for f16 conversion hazards.
    pub fn frag_write_pairs(
        &mut self,
        frag: &mut Fragment,
        reg_base: usize,
        vals: &[(f32, f32); WARP_SIZE],
    ) {
        // Fragment-misuse injection: one lane's pair lands on a register
        // base off the diagonal mapping — the operand tile is silently
        // wrong, which only the sanitizer's mapping checker makes loud.
        let mut bases = [reg_base; WARP_SIZE];
        if let Some(inj) = self.injector.as_mut() {
            let rate = inj.config().frag_misuse_rate;
            if rate > 0.0 && inj.chance(rate) {
                // `^ 2` maps both valid bases {0, 6} to invalid ones {2, 4}.
                bases[inj.below(WARP_SIZE)] = reg_base ^ 2;
                self.counters.faults_injected += 1;
            }
        }
        if let Some(s) = &mut self.san {
            let opt: [Option<(f32, f32)>; WARP_SIZE] = vals.map(Some);
            s.check_frag_pairs(bases.iter().copied().enumerate(), &opt, "frag_write");
        }
        for (lane, &(v0, v1)) in vals.iter().enumerate() {
            frag.write_reg(lane, bases[lane], v0);
            frag.write_reg(lane, bases[lane] + 1, v1);
        }
    }

    /// Registers `n` issued `m8n8k4` MMAs (DASP's primitive; its kernels
    /// compute with [`crate::mma::mma_m8n8k4`] directly).
    pub fn mma_m8n8k4_issue(&mut self, n: u64) {
        self.counters.mma_m8n8k4 += n;
    }

    /// Registers `bytes` staged through shared memory (the conventional
    /// WMMA load path that the paper's direct register access eliminates).
    /// Counts the store-to-smem and load-from-smem instruction pair.
    pub fn smem_stage(&mut self, bytes: u64) {
        self.counters.smem_bytes += bytes;
        // One 32-lane store + one load instruction per 128 staged bytes.
        self.counters.cuda_ops += 2 * bytes.div_ceil(128);
    }

    /// Warp tree-reduction (`__shfl_down_sync` ladder): returns the sum of
    /// all 32 lane values; 5 shuffle+add steps.
    pub fn reduce_sum(&mut self, vals: &[f32; WARP_SIZE]) -> f32 {
        self.counters.cuda_ops += 5;
        let mut v = *vals;
        let mut width = WARP_SIZE / 2;
        while width > 0 {
            for i in 0..width {
                v[i] += v[i + width];
            }
            width /= 2;
        }
        v[0]
    }

    /// Segmented tree-reduction: sums each aligned group of `group` lanes
    /// (power of two); lane `l` receives the sum of its group.
    pub fn segmented_reduce_sum(
        &mut self,
        vals: &[f32; WARP_SIZE],
        group: usize,
    ) -> [f32; WARP_SIZE] {
        assert!(group.is_power_of_two() && group <= WARP_SIZE);
        self.counters.cuda_ops += group.trailing_zeros() as u64;
        let mut v = *vals;
        let mut width = group / 2;
        while width > 0 {
            let mut next = v;
            for l in 0..WARP_SIZE {
                let base = l / group * group;
                let pos = l % group;
                let partner = base + (pos + width) % group;
                next[l] = v[l] + v[partner];
            }
            v = next;
            width /= 2;
        }
        v
    }
}

// Drawn fault sites for one load instruction: `(active-lane choice, random
// word)` per bit flip, plus an optional stuck active-lane choice.
struct LoadFaults {
    flips: Vec<(usize, u64)>,
    stuck: Option<usize>,
}

// Physical lane numbers of the active lanes, plus their count.
fn active_lanes(idx: &[Option<u32>; WARP_SIZE]) -> ([usize; WARP_SIZE], usize) {
    let mut active = [0usize; WARP_SIZE];
    let mut n = 0;
    for (lane, i) in idx.iter().enumerate() {
        if i.is_some() {
            active[n] = lane;
            n += 1;
        }
    }
    (active, n)
}

// `active_lanes` for a write set.
fn active_lanes_w(writes: &[Option<(u32, f32)>; WARP_SIZE]) -> ([usize; WARP_SIZE], usize) {
    let mut active = [0usize; WARP_SIZE];
    let mut n = 0;
    for (lane, w) in writes.iter().enumerate() {
        if w.is_some() {
            active[n] = lane;
            n += 1;
        }
    }
    (active, n)
}

/// Builds a lane-index array from an iterator of at most 32 indices
/// (remaining lanes inactive) — a small kernel-authoring convenience.
pub fn lanes_from(iter: impl IntoIterator<Item = u32>) -> [Option<u32>; WARP_SIZE] {
    let mut out = [None; WARP_SIZE];
    for (l, i) in iter.into_iter().take(WARP_SIZE).enumerate() {
        out[l] = Some(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::l40())
    }

    #[test]
    fn alloc_assigns_disjoint_addresses() {
        let g = gpu();
        let a = g.alloc(vec![0f32; 100]);
        let b = g.alloc(vec![0u64; 10]);
        // a spans 400 bytes from its base; b must start past it.
        assert!(b.addr(0) >= a.addr(99) + 4);
    }

    #[test]
    fn unit_stride_gather_counts_four_sectors() {
        let g = gpu();
        let buf = g.alloc((0..64u32).map(|i| i as f32).collect::<Vec<_>>());
        let c = g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            let vals = ctx.gather(&buf, &idx);
            assert_eq!(vals[5], 5.0);
        });
        assert_eq!(c.load_insts, 1);
        assert_eq!(c.sectors_read, 4); // 32 f32 = 128 B = 4 sectors
        assert_eq!(c.dram_read_bytes, 128);
        assert_eq!(c.warps, 1);
    }

    #[test]
    fn strided_gather_is_uncoalesced() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 32 * 32]);
        let c = g.launch(1, |ctx| {
            let idx = lanes_from((0..32u32).map(|i| i * 32)); // 128 B stride
            ctx.gather(&buf, &idx);
        });
        assert_eq!(c.sectors_read, 32);
    }

    #[test]
    fn l2_hit_on_repeat_access() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 32]);
        let c = g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            ctx.gather(&buf, &idx);
            ctx.gather(&buf, &idx);
        });
        assert_eq!(c.sectors_read, 8);
        assert_eq!(c.l2_hits, 4, "second gather fully hits");
        assert_eq!(c.dram_read_bytes, 128, "only first gather reaches DRAM");
    }

    #[test]
    fn inactive_lanes_skip_traffic() {
        let g = gpu();
        let buf = g.alloc(vec![2.0f32; 64]);
        let c = g.launch(1, |ctx| {
            let mut idx = [None; WARP_SIZE];
            idx[3] = Some(8u32);
            let vals = ctx.gather(&buf, &idx);
            assert_eq!(vals[3], 2.0);
            assert_eq!(vals[0], 0.0, "inactive lane default");
        });
        assert_eq!(c.sectors_read, 1);
    }

    #[test]
    fn gather_pair_reads_two_consecutive() {
        let g = gpu();
        let buf = g.alloc((0..64u32).map(|i| i as f32).collect::<Vec<_>>());
        g.launch(1, |ctx| {
            let idx = lanes_from((0..32u32).map(|i| i * 2));
            let pairs = ctx.gather_pair(&buf, &idx);
            assert_eq!(pairs[3], (6.0, 7.0));
        });
    }

    #[test]
    fn scatter_writes_and_counts() {
        let g = gpu();
        let out = g.alloc_output(64);
        let c = g.launch(1, |ctx| {
            let mut w = [None; WARP_SIZE];
            for l in 0..16 {
                w[l] = Some((l as u32, l as f32));
            }
            ctx.scatter(&out, &w);
        });
        assert_eq!(c.store_insts, 1);
        assert_eq!(c.sectors_written, 2); // 16 f32 = 64 B
        assert_eq!(c.dram_write_bytes, 64);
        assert_eq!(out.load(7), 7.0);
    }

    #[test]
    fn atomics_accumulate_across_warps() {
        let g = gpu();
        let out = g.alloc_output(4);
        let c = g.launch(64, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((1u32, 1.0f32));
            ctx.atomic_add(&out, &w);
        });
        assert_eq!(c.atomic_ops, 64);
        assert_eq!(out.load(1), 64.0);
    }

    #[test]
    fn counters_are_deterministic_across_launches() {
        let g = gpu();
        let buf = g.alloc(vec![1.0f32; 10_000]);
        let run = || {
            g.launch(200, |ctx| {
                let base = (ctx.warp_id * 37 % 9000) as u32;
                let idx = lanes_from(base..base + 32);
                ctx.gather(&buf, &idx);
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reduce_sum_is_exact_tree() {
        let g = gpu();
        g.launch(1, |ctx| {
            let mut v = [0.0f32; WARP_SIZE];
            for (i, x) in v.iter_mut().enumerate() {
                *x = (i + 1) as f32;
            }
            assert_eq!(ctx.reduce_sum(&v), (32 * 33 / 2) as f32);
        });
    }

    #[test]
    fn segmented_reduce_groups_of_four() {
        let g = gpu();
        g.launch(1, |ctx| {
            let mut v = [0.0f32; WARP_SIZE];
            for (i, x) in v.iter_mut().enumerate() {
                *x = i as f32;
            }
            let r = ctx.segmented_reduce_sum(&v, 4);
            // Group 0 = 0+1+2+3 = 6, each lane of the group sees the sum.
            assert_eq!(&r[0..4], &[6.0; 4]);
            assert_eq!(&r[4..8], &[22.0; 4]);
            assert_eq!(r[31], (28 + 29 + 30 + 31) as f32);
        });
    }

    #[test]
    fn mma_issue_is_counted_and_computed() {
        use crate::fragment::{FragKind, Fragment};
        let g = gpu();
        let c = g.launch(1, |ctx| {
            let mut a = Fragment::new(FragKind::MatrixA);
            a.set(0, 0, 2.0);
            let mut b = Fragment::new(FragKind::MatrixB);
            b.set(0, 0, 3.0);
            let acc = Fragment::new(FragKind::Accumulator);
            let mut d = Fragment::new(FragKind::Accumulator);
            ctx.mma_16x16x16(&mut d, &a, &b, &acc);
            assert_eq!(d.get(0, 0), 6.0);
        });
        assert_eq!(c.mma_m16n16k16, 1);
    }

    #[test]
    fn smem_staging_costs_instructions() {
        let g = gpu();
        let c = g.launch(1, |ctx| ctx.smem_stage(512));
        assert_eq!(c.smem_bytes, 512);
        assert_eq!(c.cuda_ops, 8);
    }

    #[test]
    fn fault_injection_corrupts_values_and_counts() {
        use crate::fault::FaultConfig;
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig { seed: 7, mem_bit_flip_rate: 1.0, ..FaultConfig::disabled() };
        let g = Gpu::new(cfg);
        let buf = g.alloc(vec![1.0f32; 32]);
        let out = g.alloc_output(32);
        let c = g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            let vals = ctx.gather(&buf, &idx);
            let mut w = [None; WARP_SIZE];
            for (l, v) in vals.iter().enumerate() {
                w[l] = Some((l as u32, *v));
            }
            ctx.scatter(&out, &w);
        });
        // Rate 1.0 per sector, 4 sectors: exactly 4 flips drawn.
        assert_eq!(c.faults_injected, 4);
        assert!(out.to_vec().iter().any(|&v| v != 1.0), "at least one lane corrupted");
    }

    #[test]
    fn faults_never_touch_structural_loads() {
        use crate::fault::FaultConfig;
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig::uniform(3, 1.0);
        let g = Gpu::new(cfg);
        let buf = g.alloc((0..32u32).collect::<Vec<_>>());
        g.launch(1, |ctx| {
            let idx = lanes_from(0..32u32);
            let vals = ctx.gather(&buf, &idx);
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(*v as usize, i, "u32 loads must be exact");
            }
        });
    }

    #[test]
    fn dropped_atomics_lose_updates_but_count_ops() {
        use crate::fault::FaultConfig;
        let mut cfg = GpuConfig::l40();
        cfg.faults =
            FaultConfig { seed: 11, dropped_atomic_rate: 1.0, ..FaultConfig::disabled() };
        let g = Gpu::new(cfg);
        let out = g.alloc_output(4);
        let c = g.launch(8, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((0u32, 1.0f32));
            ctx.atomic_add(&out, &w);
        });
        assert_eq!(c.atomic_ops, 8, "ops issue even when their effect is lost");
        assert_eq!(c.faults_injected, 8);
        assert_eq!(out.load(0), 0.0);
    }

    #[test]
    fn fault_sites_are_deterministic_per_launch_and_differ_across_launches() {
        use crate::fault::FaultConfig;
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig::uniform(42, 0.05);
        // Per-warp gathered sums land in an output via scatter (scatter is
        // not a fault site), exposing exactly which lanes were corrupted.
        let sums = |g: &Gpu, buf: &DeviceBuffer<f32>| {
            let out = g.alloc_output(100);
            let c = g.launch(100, |ctx| {
                let base = (ctx.warp_id * 93 % 9000) as u32;
                let vals = ctx.gather(buf, &lanes_from(base..base + 32));
                let s = ctx.reduce_sum(&vals);
                let mut w = [None; WARP_SIZE];
                w[0] = Some((ctx.warp_id as u32, s));
                ctx.scatter(&out, &w);
            });
            let bits: Vec<u32> = out.to_vec().iter().map(|v| v.to_bits()).collect();
            (c, bits)
        };
        let run = || {
            let g = Gpu::new(cfg.clone());
            let buf = g.alloc(vec![1.0f32; 10_000]);
            sums(&g, &buf)
        };
        let (c1, s1) = run();
        let (c2, s2) = run();
        assert!(c1.faults_injected > 0);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);

        // Same Gpu, second launch: salt advances, fault draws differ.
        let g = Gpu::new(cfg.clone());
        let buf = g.alloc(vec![1.0f32; 10_000]);
        let (_, a) = sums(&g, &buf);
        let (_, b) = sums(&g, &buf);
        assert_ne!(a, b, "retries must see fresh fault sites");
    }

    #[test]
    fn disabled_faults_leave_everything_bit_identical() {
        let run = || {
            let g = gpu(); // stock preset: faults disabled
            let buf = g.alloc((0..4096u32).map(|i| i as f32 * 0.5).collect::<Vec<_>>());
            let out = g.alloc_output(64);
            let c = g.launch(128, |ctx| {
                let base = (ctx.warp_id * 31 % 4000) as u32;
                let vals = ctx.gather(&buf, &lanes_from(base..base + 32));
                let s = ctx.reduce_sum(&vals);
                let mut w = [None; WARP_SIZE];
                w[0] = Some(((ctx.warp_id % 64) as u32, s));
                ctx.atomic_add(&out, &w);
            });
            assert_eq!(c.faults_injected, 0);
            assert_eq!(c.faults_observed, 0);
            (c, out.to_vec())
        };
        let (c1, y1) = run();
        let (c2, y2) = run();
        assert_eq!(c1, c2);
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&y1), bits(&y2));
    }

    fn san_gpu(faults: crate::fault::FaultConfig) -> Gpu {
        use crate::san::SanConfig;
        let mut cfg = GpuConfig::l40();
        cfg.faults = faults;
        cfg.san = SanConfig::on();
        Gpu::new(cfg)
    }

    #[test]
    fn san_clean_run_is_bit_identical_to_sanitizer_off() {
        use crate::fault::FaultConfig;
        let run = |san: bool| {
            let g = if san { san_gpu(FaultConfig::disabled()) } else { gpu() };
            let buf = g.alloc((0..4096u32).map(|i| i as f32 * 0.5).collect::<Vec<_>>());
            let out = g.alloc_output(64);
            let mut c = g.launch(128, |ctx| {
                let base = (ctx.warp_id * 31 % 4000) as u32;
                let vals = ctx.gather(&buf, &lanes_from(base..base + 32));
                let s = ctx.reduce_sum(&vals);
                let mut w = [None; WARP_SIZE];
                w[0] = Some(((ctx.warp_id % 64) as u32, s));
                ctx.atomic_add(&out, &w);
            });
            assert!(g.take_san_reports().is_empty(), "clean kernel: no reports");
            // The only permitted counter difference is the report tally
            // itself, and on a clean kernel it is zero too.
            assert_eq!(c.san_reports, 0);
            c.san_reports = 0;
            (c, out.to_vec().iter().map(|f| f.to_bits()).collect::<Vec<_>>())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn san_catches_injected_oob_and_uninit_reads() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        // 100 f32 = 400 data bytes in a 512-byte allocation: both the
        // alignment tail and past-the-end targets exist.
        let g = san_gpu(FaultConfig {
            seed: 5,
            oob_read_rate: 1.0,
            uninit_read_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let buf = g.alloc(vec![1.0f32; 100]);
        let c = g.launch(4, |ctx| {
            ctx.gather(&buf, &lanes_from(0..32u32));
        });
        assert_eq!(c.faults_injected, 8, "both kinds fire on all 4 warps");
        let reports = g.take_san_reports();
        for kind in [HazardKind::OutOfBounds, HazardKind::UninitRead] {
            let r = reports
                .iter()
                .find(|r| r.kind == kind)
                .unwrap_or_else(|| panic!("{kind} not reported"));
            assert!(r.warp.is_some() && r.lane.is_some() && r.addr.is_some(), "{r}");
        }
        // Injection without the sanitizer: silent (no panic, no report).
        let mut cfg = GpuConfig::l40();
        cfg.faults = FaultConfig { seed: 5, oob_read_rate: 1.0, ..FaultConfig::disabled() };
        let g2 = Gpu::new(cfg);
        let buf2 = g2.alloc(vec![1.0f32; 100]);
        g2.launch(4, |ctx| {
            ctx.gather(&buf2, &lanes_from(0..32u32));
        });
        assert!(g2.take_san_reports().is_empty());
    }

    #[test]
    fn san_catches_injected_lane_race() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig {
            seed: 9,
            lane_race_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let out = g.alloc_output(64);
        let c = g.launch(1, |ctx| {
            let mut w = [None; WARP_SIZE];
            for l in 0..16 {
                w[l] = Some((l as u32, l as f32));
            }
            ctx.scatter(&out, &w);
        });
        assert_eq!(c.faults_injected, 1);
        let reports = g.take_san_reports();
        let r = reports.iter().find(|r| r.kind == HazardKind::LaneRace).expect("lane race");
        assert_eq!(r.op, "scatter");
        assert!(r.lane.is_some() && r.addr.is_some());
    }

    #[test]
    fn san_catches_injected_invalid_atomic() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig {
            seed: 3,
            invalid_atomic_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let out = g.alloc_output(8);
        // All warps hammer one element atomically; the demoted lane's
        // plain store must surface as an atomic conflict.
        let c = g.launch(4, |ctx| {
            let mut w = [None; WARP_SIZE];
            for l in 0..4 {
                w[l] = Some((0u32, 1.0f32));
            }
            ctx.atomic_add(&out, &w);
        });
        assert_eq!(c.faults_injected, 4, "one demotion per warp");
        let reports = g.take_san_reports();
        assert!(
            reports.iter().any(|r| r.kind == HazardKind::AtomicConflict),
            "demoted atomic must be reported: {reports:?}"
        );
    }

    #[test]
    fn san_catches_injected_fragment_misuse() {
        use crate::fault::FaultConfig;
        use crate::fragment::{FragKind, Fragment};
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig {
            seed: 21,
            frag_misuse_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let c = g.launch(1, |ctx| {
            let mut a = Fragment::new(FragKind::MatrixA);
            ctx.frag_write_pairs(&mut a, 0, &[(1.0, 2.0); WARP_SIZE]);
            ctx.frag_write_pairs(&mut a, 6, &[(3.0, 4.0); WARP_SIZE]);
        });
        assert_eq!(c.faults_injected, 2);
        let reports = g.take_san_reports();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.kind, HazardKind::FragmentMapping);
            assert_eq!(r.op, "frag_write");
            assert!(r.lane.is_some());
        }
    }

    #[test]
    fn san_reports_use_after_free_and_double_free() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig::disabled());
        let buf = g.alloc(vec![1.0f32; 32]);
        g.free(&buf);
        let c = g.launch(1, |ctx| {
            ctx.gather(&buf, &lanes_from(0..32u32));
        });
        assert_eq!(c.san_reports, 1);
        g.free(&buf); // allocator misuse, host-side
        let reports = g.take_san_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].kind, HazardKind::UseAfterFree);
        assert_eq!(reports[1].kind, HazardKind::AllocMisuse);
        assert!(reports[1].warp.is_none());
    }

    #[test]
    fn san_catches_cross_warp_write_race() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig::disabled());
        let out = g.alloc_output(4);
        // Every warp plain-stores to element 0: a cross-warp race the
        // post-pass must flag exactly once.
        let c = g.launch(8, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((0u32, ctx.warp_id as f32));
            ctx.scatter(&out, &w);
        });
        assert_eq!(c.san_reports, 1);
        let reports = g.take_san_reports();
        assert_eq!(reports[0].kind, HazardKind::WriteRace);
        assert_eq!(reports[0].op, "store");
    }

    #[test]
    fn san_catches_write_then_read_race() {
        use crate::fault::FaultConfig;
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig::disabled());
        let out = g.alloc_output(32);
        // A read-side alias of the output at the same addresses.
        let alias = DeviceBuffer::with_base(out.base(), vec![0.0f32; 32]);
        g.launch(1, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((5u32, 1.0f32));
            ctx.scatter(&out, &w);
            ctx.gather(&alias, &lanes_from(std::iter::once(5u32)));
        });
        let reports = g.take_san_reports();
        assert!(
            reports.iter().any(|r| r.kind == HazardKind::WriteReadRace),
            "store-then-gather of one address must be flagged: {reports:?}"
        );
    }

    #[test]
    fn san_mma_scan_flags_nonfinite_accumulators() {
        use crate::fault::FaultConfig;
        use crate::fragment::{FragKind, Fragment};
        use crate::san::HazardKind;
        let g = san_gpu(FaultConfig::disabled());
        g.launch(1, |ctx| {
            let mut a = Fragment::new(FragKind::MatrixA);
            a.set(0, 0, f32::INFINITY);
            let mut b = Fragment::new(FragKind::MatrixB);
            b.set(0, 0, 0.0); // Inf * 0 = NaN
            b.set(0, 1, 1.0); // Inf * 1 = Inf
            let acc = Fragment::new(FragKind::Accumulator);
            let mut d = Fragment::new(FragKind::Accumulator);
            ctx.mma_16x16x16(&mut d, &a, &b, &acc);
        });
        let kinds: Vec<_> = g.take_san_reports().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&HazardKind::F16Overflow), "{kinds:?}");
        assert!(kinds.contains(&HazardKind::NanProduced), "{kinds:?}");
        let (ovf, _, nan) = g.san_numeric_counts();
        assert!(ovf >= 1 && nan >= 1);
    }

    #[test]
    fn san_numeric_counts_accumulate_from_frag_writes() {
        use crate::fault::FaultConfig;
        use crate::fragment::{FragKind, Fragment};
        let g = san_gpu(FaultConfig::disabled());
        g.launch(1, |ctx| {
            let mut a = Fragment::new(FragKind::MatrixA);
            let mut vals = [(1.0f32, 1.0f32); WARP_SIZE];
            vals[3] = (1e6, 1.0); // f16 overflow
            vals[7] = (1e-9, 1.0); // underflow above tolerance
            ctx.frag_write_pairs(&mut a, 0, &vals);
        });
        assert_eq!(g.san_numeric_counts(), (1, 1, 0));
        assert_eq!(g.take_san_reports().len(), 2);
    }

    #[test]
    fn shards_cover_all_warps_exactly_once() {
        let g = gpu();
        let out = g.alloc_output(1000);
        g.launch(1000, |ctx| {
            let mut w = [None; WARP_SIZE];
            w[0] = Some((ctx.warp_id as u32, 1.0f32));
            ctx.atomic_add(&out, &w);
        });
        assert!(out.to_vec().iter().all(|&v| v == 1.0));
    }
}
