//! Unified injection surface over the simulator's three fault planes.
//!
//! The fault machinery grew one plane at a time: seeded kernel-level bit
//! faults ([`FaultConfig`]), device-level crash/hang/straggler processes
//! ([`DeviceFaultConfig`]), and the SimSan hazard detector
//! ([`SanConfig`]) that turns numeric and memory hazards into typed
//! errors. Each plane has its own config type and its own hook on the
//! serving layer, which is fine for single-family sweeps but awkward for
//! a chaos orchestrator that composes families: correlated schedules
//! need to swap *all three* planes atomically at a simulated-time
//! boundary.
//!
//! [`InjectionConfig`] is that atom — one value describing everything the
//! simulator may inject. It is pure data (the serving layer applies it);
//! the combinators here exist so schedule code can start from
//! [`InjectionConfig::none`] and overlay the planes that a window of the
//! schedule activates.

use crate::device::DeviceFaultConfig;
use crate::fault::FaultConfig;
use crate::san::SanConfig;

/// Everything the simulator can inject or detect, as one value.
///
/// `san` rides along because hazard-family chaos is only observable when
/// the sanitizer is armed: injected lane races and fragment misuse are
/// silent without it. An orchestrator that schedules a hazard window
/// must therefore flip detection on in the same atomic swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionConfig {
    /// Kernel-level seeded bit faults (memory flips, fragment
    /// corruption, stuck lanes, dropped atomics, access hazards).
    pub faults: FaultConfig,
    /// Device-level failure processes (crash / hang / straggler).
    pub device: DeviceFaultConfig,
    /// SimSan detection state. Keep enabled whenever `faults` includes
    /// hazard-class rates, else those faults execute undetected.
    pub san: SanConfig,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig::none()
    }
}

impl InjectionConfig {
    /// Nothing injected, nothing armed: the clean simulator.
    pub fn none() -> Self {
        InjectionConfig {
            faults: FaultConfig::disabled(),
            device: DeviceFaultConfig::disabled(),
            san: SanConfig::disabled(),
        }
    }

    /// True when any plane can fire.
    pub fn enabled(&self) -> bool {
        self.faults.enabled() || self.device.enabled()
    }

    /// Overlays kernel-level bit faults (replacing that plane only).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overlays device-level failure processes (replacing that plane only).
    pub fn with_device(mut self, device: DeviceFaultConfig) -> Self {
        self.device = device;
        self
    }

    /// Arms the sanitizer (detection plane).
    pub fn with_san(mut self, san: SanConfig) -> Self {
        self.san = san;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fully_disabled() {
        let inj = InjectionConfig::none();
        assert!(!inj.enabled());
        assert!(!inj.san.enabled);
    }

    #[test]
    fn overlays_replace_only_their_plane() {
        let inj = InjectionConfig::none()
            .with_faults(FaultConfig::uniform(7, 1e-3))
            .with_san(SanConfig::on());
        assert!(inj.faults.enabled());
        assert!(inj.san.enabled);
        assert!(!inj.device.enabled(), "device plane untouched");
        let cleared = inj.with_faults(FaultConfig::disabled());
        assert!(!cleared.faults.enabled());
        assert!(cleared.san.enabled, "other planes survive the overlay");
    }
}
