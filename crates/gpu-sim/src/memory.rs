//! Device memory model: virtually-addressed buffers, the warp coalescer
//! and a sectored, set-associative L2 cache.
//!
//! Every simulated global-memory access is translated to a byte address,
//! coalesced warp-wide into unique 32-byte sectors (the transaction
//! granularity of NVIDIA GPUs), and looked up in the L2 model. This is what
//! makes the paper's Section 5.3 observable in the simulator: CSR Warp16's
//! per-thread row walks shatter into many sectors per instruction, while
//! block-granular kernels touch few.

use crate::half::F16;
use std::sync::atomic::{AtomicU32, Ordering};

/// Bytes per memory transaction sector.
pub const SECTOR_BYTES: u64 = 32;
/// Bytes per L2 cache line (4 sectors).
pub const LINE_BYTES: u64 = 128;

/// Scalar types that can live in simulated device memory.
pub trait DeviceScalar: Copy + Default + Send + Sync + 'static {
    /// Size in device memory, in bytes.
    const BYTES: u64;
    /// Whether the fault injector may corrupt loads of this type. True only
    /// for *value* types (`f32`, [`F16`]); structural types (indices,
    /// bitmaps, offsets) stay false — corrupting them models control-flow
    /// corruption, which is outside the arithmetic fault model (and would
    /// crash the host-side simulator instead of producing silent errors).
    const FLIPPABLE: bool = false;
    /// Returns the value with one high-order bit flipped, selected by the
    /// random word `r`. Identity for non-flippable types. High-order bits
    /// only, so every injected fault perturbs results above f16
    /// accumulation noise and is therefore observable by ABFT checks.
    #[must_use]
    fn flip_high_bit(self, _r: u64) -> Self {
        self
    }
}

impl DeviceScalar for f32 {
    const BYTES: u64 = 4;
    const FLIPPABLE: bool = true;
    fn flip_high_bit(self, r: u64) -> Self {
        // Bits 20..=30: top mantissa bits and the exponent (sign excluded).
        let bit = 20 + (r % 11) as u32;
        f32::from_bits(self.to_bits() ^ (1 << bit))
    }
}
impl DeviceScalar for u32 {
    const BYTES: u64 = 4;
}
impl DeviceScalar for i32 {
    const BYTES: u64 = 4;
}
impl DeviceScalar for u64 {
    const BYTES: u64 = 8;
}
impl DeviceScalar for F16 {
    const BYTES: u64 = 2;
    const FLIPPABLE: bool = true;
    fn flip_high_bit(self, r: u64) -> Self {
        // Bits 8..=14: top mantissa bits and the exponent (sign excluded).
        let bit = 8 + (r % 7) as u32;
        F16(self.0 ^ (1 << bit))
    }
}
impl DeviceScalar for u8 {
    const BYTES: u64 = 1;
}

/// A read-only device buffer with a virtual base address.
///
/// Created through [`crate::exec::Gpu::alloc`], which assigns
/// non-overlapping addresses so the coalescer and cache see a realistic
/// address space.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T: DeviceScalar> {
    base: u64,
    data: Vec<T>,
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    /// Wraps host data at a fixed device address (use
    /// [`crate::exec::Gpu::alloc`] in normal code).
    pub fn with_base(base: u64, data: Vec<T>) -> Self {
        DeviceBuffer { base, data }
    }

    /// Virtual byte address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len(), "device OOB: {i} >= {}", self.data.len());
        self.base + i as u64 * T::BYTES
    }

    /// Like [`DeviceBuffer::addr`] but without the bounds assertion — used
    /// by the executor, where an out-of-range index is a *modelled* event
    /// (coalesced, and reported by SimSan) rather than a host bug.
    #[inline]
    pub fn addr_raw(&self, i: usize) -> u64 {
        self.base + i as u64 * T::BYTES
    }

    /// Base device address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Element value (functional read; traffic accounting happens in
    /// [`crate::exec::WarpCtx`]).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device bytes occupied.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * T::BYTES
    }

    /// Host view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// A writable f32 output vector: atomically updatable so row-parallel warps
/// (disjoint writers) and edge-parallel kernels (Gunrock's atomic adds) can
/// share one abstraction.
#[derive(Debug)]
pub struct DeviceOutput {
    base: u64,
    data: Vec<AtomicU32>,
}

impl DeviceOutput {
    /// Zero-initialised output of `len` elements at `base`.
    pub fn with_base(base: u64, len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || AtomicU32::new(0));
        DeviceOutput { base, data }
    }

    /// Virtual byte address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * 4
    }

    /// Base device address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Plain store (relaxed; each element has exactly one writer in
    /// row-parallel kernels).
    #[inline]
    pub fn store(&self, i: usize, v: f32) {
        self.data[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic float add via compare-exchange, the semantics of CUDA's
    /// `atomicAdd(float*)`.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: f32) {
        let cell = &self.data[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reads element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> f32 {
        f32::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Copies the result back to the host.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.iter().map(|a| f32::from_bits(a.load(Ordering::Relaxed))).collect()
    }
}

/// Sectored, 16-way set-associative LRU cache model.
///
/// Lines are 128 bytes with 4 independently-fillable 32-byte sectors,
/// matching NVIDIA's L2 behaviour: a miss fetches only the missing sector
/// from DRAM.
#[derive(Debug)]
pub struct L2Cache {
    sets: Vec<Vec<LineEntry>>,
    set_mask: u64,
    ways: usize,
    clock: u64,
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    line: u64,
    sector_mask: u8,
    last_use: u64,
}

impl L2Cache {
    /// Builds a cache of approximately `capacity_bytes` (rounded down to a
    /// power-of-two set count) with 16 ways.
    pub fn new(capacity_bytes: usize) -> Self {
        let ways = 16usize;
        let lines = (capacity_bytes as u64 / LINE_BYTES).max(ways as u64);
        let nsets = (lines / ways as u64).next_power_of_two() / 2;
        let nsets = nsets.max(1);
        L2Cache {
            sets: vec![Vec::with_capacity(ways); nsets as usize],
            set_mask: nsets - 1,
            ways,
            clock: 0,
        }
    }

    /// Looks up one 32-byte sector (identified by `addr >> 5`); returns
    /// `true` on hit. On miss the sector is installed.
    pub fn access_sector(&mut self, sector: u64) -> bool {
        self.clock += 1;
        let line = sector >> 2;
        let sector_bit = 1u8 << (sector & 3);
        let set = &mut self.sets[(line & self.set_mask) as usize];

        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.last_use = self.clock;
            if e.sector_mask & sector_bit != 0 {
                return true;
            }
            e.sector_mask |= sector_bit;
            return false;
        }
        if set.len() == self.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            set.swap_remove(victim);
        }
        set.push(LineEntry { line, sector_mask: sector_bit, last_use: self.clock });
        false
    }
}

/// Deduplicates a warp's byte addresses into unique 32-byte sectors
/// (the coalescer). `scratch` is reused across calls to avoid allocation.
pub fn coalesce_into(addrs: impl Iterator<Item = u64>, scratch: &mut Vec<u64>) {
    scratch.clear();
    for a in addrs {
        scratch.push(a / SECTOR_BYTES);
    }
    scratch.sort_unstable();
    scratch.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_addressing() {
        let b = DeviceBuffer::with_base(0x1000, vec![1.0f32, 2.0, 3.0]);
        assert_eq!(b.addr(0), 0x1000);
        assert_eq!(b.addr(2), 0x1008);
        assert_eq!(b.get(1), 2.0);
        assert_eq!(b.bytes(), 12);
    }

    #[test]
    fn f16_buffer_is_two_bytes_per_element() {
        let b = DeviceBuffer::with_base(0, vec![F16::ONE; 10]);
        assert_eq!(b.bytes(), 20);
        assert_eq!(b.addr(5), 10);
    }

    #[test]
    fn output_store_and_read_back() {
        let o = DeviceOutput::with_base(0, 4);
        o.store(2, 1.5);
        o.fetch_add(2, 2.0);
        o.fetch_add(0, -1.0);
        assert_eq!(o.to_vec(), vec![-1.0, 0.0, 3.5, 0.0]);
    }

    #[test]
    fn atomic_add_from_threads_is_exact_for_integers() {
        let o = std::sync::Arc::new(DeviceOutput::with_base(0, 1));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let o = o.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        o.fetch_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(o.load(0), 8000.0);
    }

    #[test]
    fn coalesce_unit_stride_warp() {
        // 32 lanes reading consecutive f32s: 128 bytes = 4 sectors.
        let mut s = Vec::new();
        coalesce_into((0..32u64).map(|i| i * 4), &mut s);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn coalesce_strided_warp_is_uncoalesced() {
        // 32 lanes striding 128 bytes apart: 32 separate sectors.
        let mut s = Vec::new();
        coalesce_into((0..32u64).map(|i| i * 128), &mut s);
        assert_eq!(s.len(), 32);
    }

    #[test]
    fn coalesce_broadcast_is_one_sector() {
        let mut s = Vec::new();
        coalesce_into((0..32u64).map(|_| 0x40), &mut s);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut c = L2Cache::new(1 << 20);
        assert!(!c.access_sector(100), "cold miss");
        assert!(c.access_sector(100), "hit after fill");
    }

    #[test]
    fn sectored_fill_misses_neighbour_sector() {
        let mut c = L2Cache::new(1 << 20);
        assert!(!c.access_sector(4)); // line 1, sector 0
        assert!(!c.access_sector(5), "neighbour sector must miss (sectored)");
        assert!(c.access_sector(4));
        assert!(c.access_sector(5));
    }

    #[test]
    fn lru_eviction() {
        // Tiny cache: 16 ways * 1 set (capacity 2 KiB -> 16 lines).
        let mut c = L2Cache::new(2048);
        assert_eq!(c.sets.len(), 1);
        for line in 0..16u64 {
            assert!(!c.access_sector(line * 4));
        }
        // All 16 resident.
        assert!(c.access_sector(0));
        // A 17th line evicts the least recently used (line 1: line 0 was
        // just touched).
        assert!(!c.access_sector(16 * 4));
        assert!(!c.access_sector(4), "line 1 was evicted");
        assert!(c.access_sector(0), "line 0 survived");
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = L2Cache::new(1 << 20); // 1 MiB = 8192 lines
        let sectors: Vec<u64> = (0..2000u64).collect();
        for &s in &sectors {
            c.access_sector(s);
        }
        let hits = sectors.iter().filter(|&&s| c.access_sector(s)).count();
        assert_eq!(hits, sectors.len(), "resident set must fully hit");
    }
}
