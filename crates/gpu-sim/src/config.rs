//! GPU parameter sets for the analytic timing model.
//!
//! The paper evaluates on an NVIDIA L40 (568 4th-generation tensor cores)
//! and a V100 (640 1st-generation tensor cores). The constants below come
//! from the public datasheets; they set the *scale* of simulated times,
//! while the counted memory/compute quantities set the *shape* of every
//! figure.

use crate::fault::FaultConfig;
use crate::san::SanConfig;

/// Architectural parameters of one simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing name, printed by the harness.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores (FP32 lanes) across the whole GPU.
    pub cuda_cores: usize,
    /// Tensor cores across the whole GPU.
    pub tensor_cores: usize,
    /// Boost clock in Hz.
    pub clock_hz: f64,
    /// DRAM bandwidth in bytes/s.
    pub dram_bw: f64,
    /// Achievable fraction of peak DRAM bandwidth for irregular kernels.
    pub dram_efficiency: f64,
    /// L2 cache capacity in bytes. The L40's 96 MB L2 (vs the V100's 6 MB)
    /// is why small matrices behave differently on the two GPUs.
    pub l2_bytes: usize,
    /// L2 bandwidth in bytes/s.
    pub l2_bw: f64,
    /// Shared-memory aggregate bandwidth in bytes/s (used only by the
    /// shared-memory-staging ablation; Spaden itself bypasses it).
    pub smem_bw: f64,
    /// `m16n16k16` f16×f16+f32 MMA operations per second, whole GPU.
    pub mma_m16n16k16_per_s: f64,
    /// `m8n8k4` MMA operations per second (DASP's primitive). Native and
    /// fast on Volta; the PTX ISA warns it is "substantially reduced" on
    /// later architectures, which is what makes DASP slow on the L40.
    pub mma_m8n8k4_per_s: f64,
    /// Global atomic operations per second (L2-side).
    pub atomic_ops_per_s: f64,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Fault-injection rates (all zero on the stock presets: no injection,
    /// no behaviour change). See [`crate::fault`].
    pub faults: FaultConfig,
    /// SimSan shadow-state sanitizer (off on the stock presets:
    /// zero-cost, bit-identical behaviour). See [`crate::san`].
    pub san: SanConfig,
}

impl GpuConfig {
    /// NVIDIA L40: AD102, 142 SMs, 18176 CUDA cores, 568 4th-gen tensor
    /// cores, 48 GB GDDR6 at 864 GB/s, 96 MB L2, ~2.49 GHz boost.
    pub fn l40() -> GpuConfig {
        GpuConfig {
            name: "L40",
            num_sms: 142,
            cuda_cores: 18_176,
            tensor_cores: 568,
            clock_hz: 2.49e9,
            dram_bw: 864e9,
            dram_efficiency: 0.80,
            l2_bytes: 96 << 20,
            l2_bw: 4.0e12,
            smem_bw: 18.0e12,
            // FP16 tensor peak 181 TFLOPS => 90.5e12 FMA/s / 4096 FMA per op.
            mma_m16n16k16_per_s: 90.5e12 / 4096.0,
            // m8n8k4 is not native on Ada: the PTX ISA warns of
            // "substantially reduced performance"; it is emulated at a
            // small fraction of proportional throughput.
            mma_m8n8k4_per_s: 90.5e12 / 256.0 / 160.0,
            atomic_ops_per_s: 2.0e10,
            launch_overhead_s: 3e-6,
            faults: FaultConfig::disabled(),
            san: SanConfig::disabled(),
        }
    }

    /// NVIDIA V100: GV100, 80 SMs, 5120 CUDA cores, 640 1st-gen tensor
    /// cores, 16/32 GB HBM2 at 900 GB/s, 6 MB L2, ~1.53 GHz boost.
    pub fn v100() -> GpuConfig {
        GpuConfig {
            name: "V100",
            num_sms: 80,
            cuda_cores: 5_120,
            tensor_cores: 640,
            clock_hz: 1.53e9,
            dram_bw: 900e9,
            dram_efficiency: 0.80,
            l2_bytes: 6 << 20,
            l2_bw: 2.5e12,
            smem_bw: 13.0e12,
            // FP16 tensor peak 112 TFLOPS.
            mma_m16n16k16_per_s: 56.0e12 / 4096.0,
            // m8n8k4 is the native Volta primitive: full proportional rate.
            mma_m8n8k4_per_s: 56.0e12 / 256.0,
            atomic_ops_per_s: 1.0e10,
            launch_overhead_s: 3e-6,
            faults: FaultConfig::disabled(),
            san: SanConfig::disabled(),
        }
    }

    /// Peak lane-operations per second on the CUDA cores (1 op per core per
    /// cycle; FMA would be 2 FLOPs but the counter tracks instructions).
    pub fn cuda_lane_ops_per_s(&self) -> f64 {
        self.cuda_cores as f64 * self.clock_hz
    }

    /// Effective DRAM bandwidth in bytes/s.
    pub fn effective_dram_bw(&self) -> f64 {
        self.dram_bw * self.dram_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l40_and_v100_match_datasheets() {
        let l40 = GpuConfig::l40();
        assert_eq!(l40.tensor_cores, 568); // as stated in the paper §5.1
        let v100 = GpuConfig::v100();
        assert_eq!(v100.tensor_cores, 640); // as stated in the paper §5.1
        assert!(l40.l2_bytes > v100.l2_bytes);
    }

    #[test]
    fn m8n8k4_contrast_between_architectures() {
        // DASP's primitive must be relatively fast on V100 and crippled on
        // L40 (PTX ISA note cited in §5.2).
        let l40 = GpuConfig::l40();
        let v100 = GpuConfig::v100();
        let l40_ratio = l40.mma_m8n8k4_per_s / l40.mma_m16n16k16_per_s;
        let v100_ratio = v100.mma_m8n8k4_per_s / v100.mma_m16n16k16_per_s;
        assert!(v100_ratio > 4.0 * l40_ratio);
    }

    #[test]
    fn derived_rates_positive() {
        for cfg in [GpuConfig::l40(), GpuConfig::v100()] {
            assert!(cfg.cuda_lane_ops_per_s() > 1e12, "{}", cfg.name);
            assert!(cfg.effective_dram_bw() > 1e11, "{}", cfg.name);
            assert!(cfg.effective_dram_bw() < cfg.dram_bw);
        }
    }
}
