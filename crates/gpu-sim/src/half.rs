//! IEEE 754 binary16 ("half") implemented from scratch.
//!
//! Tensor cores take half-precision inputs and accumulate in `f32`
//! (Section 2.2: "inputs in 16-bit half floating-point format and outputs
//! in 32-bit floating-point format"). bitBSR stores matrix values as f16 —
//! that is what brings its footprint down to the paper's 2.85 bytes/nnz —
//! so a correct, tested f16 is part of the substrate rather than an
//! external dependency.

/// A 16-bit IEEE 754 binary16 value (1 sign, 5 exponent, 10 mantissa bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Converts from `f32` with round-to-nearest-even, the rounding mode
    /// tensor-core loads use. Overflow goes to infinity; subnormals are
    /// produced below 2^-14; NaN payloads collapse to a canonical quiet NaN.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = bits & 0x007f_ffff;

        if exp == 0xff {
            // Inf or NaN.
            return if mant == 0 {
                F16(sign | 0x7c00)
            } else {
                F16(sign | 0x7e00) // canonical quiet NaN
            };
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7c00); // overflow -> inf
        }
        if unbiased >= -14 {
            // Normal range: keep 10 mantissa bits, RNE on the dropped 13.
            let mant16 = mant >> 13;
            let rest = mant & 0x1fff;
            let halfway = 0x1000;
            let mut out = sign as u32 | (((unbiased + 15) as u32) << 10) | mant16;
            if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
                out += 1; // mantissa carry may roll into the exponent; that
                          // is correct behaviour (rounds up to next binade
                          // or to infinity).
            }
            return F16(out as u16);
        }
        if unbiased >= -25 {
            // Subnormal range: implicit leading 1 becomes explicit, shifted
            // right by the exponent deficit.
            let full = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let mant16 = full >> shift;
            let rest = full & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut out = sign as u32 | mant16;
            if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
                out += 1;
            }
            return F16(out as u16);
        }
        F16(sign) // underflow to signed zero
    }

    /// Converts to `f32`, exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1f) as u32;
        let mant = (self.0 & 0x3ff) as u32;
        let bits = match (exp, mant) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: value = m * 2^-24; normalise so the top set
                // bit of m becomes the implicit leading 1.
                let lz = m.leading_zeros(); // in [22, 31] since m <= 0x3ff
                let shift = lz - 21; // moves the top bit to position 10
                let mant_norm = (m << shift) & 0x3ff;
                let exp32 = 134 - lz; // (31 - lz) - 24 + 127
                sign | (exp32 << 23) | (mant_norm << 13)
            }
            (0x1f, 0) => sign | 0x7f80_0000,
            (0x1f, _) => sign | 0x7fc0_0000,
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` through f16 precision and back — the value a tensor
    /// core actually multiplies after loading `value` into a half fragment.
    #[inline]
    pub fn round_f32(value: f32) -> f32 {
        F16::from_f32(value).to_f32()
    }

    /// True for positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x3ff) != 0
    }

    /// True for zero of either sign.
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7fff) == 0
    }

    /// Classifies what rounding `value` through f16 does to it — the
    /// numerical guard rail behind SimSan's per-block hazard reports:
    ///
    /// * NaN in, NaN out → [`ConvertHazard::Nan`];
    /// * infinite in, or finite in and infinite out (the f16 range tops
    ///   out at 65504) → [`ConvertHazard::Overflow`];
    /// * nonzero in with `|value| >= underflow_tol`, zero out →
    ///   [`ConvertHazard::Underflow`] (smaller magnitudes are treated as
    ///   negligible noise, not lost signal);
    /// * everything else → `None` (at worst ordinary rounding error).
    pub fn convert_hazard(value: f32, underflow_tol: f32) -> Option<ConvertHazard> {
        if value.is_nan() {
            return Some(ConvertHazard::Nan);
        }
        if value.is_infinite() {
            return Some(ConvertHazard::Overflow);
        }
        let h = F16::from_f32(value);
        if h.is_infinite() {
            return Some(ConvertHazard::Overflow);
        }
        if h.is_zero() && value != 0.0 && value.abs() >= underflow_tol {
            return Some(ConvertHazard::Underflow);
        }
        None
    }
}

/// How an f32 → f16 conversion loses information (beyond ordinary
/// rounding). See [`F16::convert_hazard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvertHazard {
    /// The value left the f16 range and became ±Inf.
    Overflow = 0,
    /// A non-negligible value rounded to zero.
    Underflow = 1,
    /// A NaN entered (or survived) the f16 datapath.
    Nan = 2,
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-1.0).0, 0xbc00);
        assert_eq!(F16::from_f32(2.0).0, 0x4000);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(1.5).0, 0x3e00);
        assert_eq!(F16::from_f32(0.099975586).0, 0x2e66); // nearest to 0.1
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY); // ties-to-even up
        assert_eq!(F16::from_f32(1e30), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e30), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals() {
        // 2^-15 is subnormal in f16: 0x0200.
        assert_eq!(F16::from_f32(2.0f32.powi(-15)).0, 0x0200);
        // Smallest subnormal 2^-24 -> 0x0001.
        assert_eq!(F16::from_f32(2.0f32.powi(-24)).0, 0x0001);
        // Half of it rounds to zero under RNE (tie, even).
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).0, 0x0000);
        // Just above half rounds up.
        assert_eq!(F16::from_f32(2.0f32.powi(-25) * 1.0001).0, 0x0001);
        // Underflow to zero.
        assert_eq!(F16::from_f32(1e-30).0, 0x0000);
    }

    #[test]
    fn subnormal_to_f32_exact() {
        assert_eq!(F16(0x0001).to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16(0x0200).to_f32(), 2.0f32.powi(-15));
        assert_eq!(F16(0x03ff).to_f32(), 2.0f32.powi(-24) * 1023.0);
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; RNE keeps
        // the even mantissa (1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie).0, 0x3c00);
        // 1 + 3*2^-11 is halfway between odd and even; rounds up to even.
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie2).0, 0x3c02);
    }

    #[test]
    fn mantissa_carry_rolls_to_next_binade() {
        // Largest f16 below 2.0 is 1.9990234; anything closer to 2.0 than
        // the midpoint must round to exactly 2.0.
        assert_eq!(F16::from_f32(1.9998).0, 0x4000);
    }

    #[test]
    fn exhaustive_roundtrip_all_finite_f16() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly.
        for bits in 0..=0xffffu16 {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x} -> {} -> {:#06x}", h.to_f32(), back.0);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        // Relative error of RNE to f16 is at most 2^-11 for normal values.
        let mut v = 1.0e-4f32;
        while v < 6.0e4 {
            let r = F16::round_f32(v);
            let rel = ((r - v) / v).abs();
            assert!(rel <= 2.0f32.powi(-11) + 1e-9, "v={v} r={r} rel={rel}");
            v *= 1.37;
        }
    }

    #[test]
    fn convert_hazard_classification() {
        let tol = 1e-12;
        assert_eq!(F16::convert_hazard(1.0, tol), None);
        assert_eq!(F16::convert_hazard(0.0, tol), None);
        assert_eq!(F16::convert_hazard(-0.0, tol), None);
        assert_eq!(F16::convert_hazard(65504.0, tol), None, "f16::MAX is representable");
        assert_eq!(F16::convert_hazard(1e6, tol), Some(ConvertHazard::Overflow));
        assert_eq!(F16::convert_hazard(-1e6, tol), Some(ConvertHazard::Overflow));
        assert_eq!(F16::convert_hazard(f32::INFINITY, tol), Some(ConvertHazard::Overflow));
        assert_eq!(F16::convert_hazard(f32::NAN, tol), Some(ConvertHazard::Nan));
        // 1e-9 rounds to zero (below the 2^-25 threshold) and is above tol.
        assert_eq!(F16::convert_hazard(1e-9, tol), Some(ConvertHazard::Underflow));
        assert_eq!(F16::convert_hazard(-1e-9, tol), Some(ConvertHazard::Underflow));
        // Below the tolerance: tolerated noise.
        assert_eq!(F16::convert_hazard(1e-20, tol), None);
        // Subnormal f16 values survive the conversion: no hazard.
        assert_eq!(F16::convert_hazard(2.0f32.powi(-20), tol), None);
    }

    #[test]
    fn ordering_preserved() {
        // Monotonic: a <= b implies f16(a) <= f16(b).
        let mut prev = F16::from_f32(-70000.0).to_f32();
        let mut v = -70000.0f32;
        while v < 70000.0 {
            let r = F16::round_f32(v);
            assert!(r >= prev, "monotonicity broken at {v}");
            prev = r;
            v += 173.31;
        }
    }
}
