//! Performance counters collected during simulated kernel execution.

/// Event counts for one kernel launch (or one warp's share of it; counters
/// from parallel shards are merged with [`KernelCounters::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// 32-byte memory sectors requested after warp-level coalescing
    /// (i.e. L2 accesses).
    pub sectors_read: u64,
    /// Sectors written (writes are modelled as streaming through L2).
    pub sectors_written: u64,
    /// Read sectors served by the L2 model.
    pub l2_hits: u64,
    /// Bytes fetched from DRAM (read misses, 32 B per missed sector).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Warp-wide load instructions issued.
    pub load_insts: u64,
    /// Warp-wide store instructions issued.
    pub store_insts: u64,
    /// Warp-wide arithmetic/logic instructions on the CUDA cores.
    pub cuda_ops: u64,
    /// `m16n16k16` tensor-core MMA operations.
    pub mma_m16n16k16: u64,
    /// `m8n8k4` tensor-core MMA operations (DASP's primitive).
    pub mma_m8n8k4: u64,
    /// Global atomic operations.
    pub atomic_ops: u64,
    /// Bytes staged through shared memory (the conventional WMMA path the
    /// paper's direct register access avoids; exercised by the ablation).
    pub smem_bytes: u64,
    /// Warps launched.
    pub warps: u64,
    /// Faults injected by the simulator during this launch (zero unless
    /// fault injection is enabled in [`crate::fault::FaultConfig`]).
    pub faults_injected: u64,
    /// Faults *observed* by software-level checks (e.g. ABFT verification
    /// in the engine layer); merged into run counters by callers.
    pub faults_observed: u64,
    /// Sanitizer reports emitted during this launch (zero unless SimSan is
    /// enabled in [`crate::san::SanConfig`] — and zero on a clean kernel
    /// even then).
    pub san_reports: u64,
}

impl KernelCounters {
    /// Element-wise sum, used when merging per-shard counters.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.sectors_read += other.sectors_read;
        self.sectors_written += other.sectors_written;
        self.l2_hits += other.l2_hits;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.load_insts += other.load_insts;
        self.store_insts += other.store_insts;
        self.cuda_ops += other.cuda_ops;
        self.mma_m16n16k16 += other.mma_m16n16k16;
        self.mma_m8n8k4 += other.mma_m8n8k4;
        self.atomic_ops += other.atomic_ops;
        self.smem_bytes += other.smem_bytes;
        self.warps += other.warps;
        self.faults_injected += other.faults_injected;
        self.faults_observed += other.faults_observed;
        self.san_reports += other.san_reports;
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// L2 read hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.sectors_read == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.sectors_read as f64
        }
    }

    /// All instruction-like events (diagnostics).
    pub fn total_instructions(&self) -> u64 {
        self.load_insts
            + self.store_insts
            + self.cuda_ops
            + self.mma_m16n16k16
            + self.mma_m8n8k4
            + self.atomic_ops
    }
}

/// Cumulative health and work counters of one device in a simulated
/// fleet. The kernel-level counters of every launch that ran to
/// completion on the device are merged into `kernel`; scheduler-level
/// events (retries, speculation, hangs) are tallied alongside so shard
/// reports can print per-device health without ad-hoc bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceCounters {
    /// The device's index in its fleet.
    pub id: u64,
    /// Merged kernel counters of completed launches (DRAM bytes, MMAs, …).
    pub kernel: KernelCounters,
    /// Launches issued to the device (including hung and crashed ones).
    pub launches: u64,
    /// Launches that completed and verified.
    pub completed: u64,
    /// Scheduler retries of shards that failed verification here.
    pub retries: u64,
    /// Launches killed by the per-shard hang timeout.
    pub hangs: u64,
    /// Launches whose modelled time was inflated by a straggle event.
    pub stragglers: u64,
    /// Speculative duplicate launches placed on this device.
    pub speculative_launches: u64,
    /// Speculative launches that finished before the original.
    pub speculative_wins: u64,
    /// True once the device crashed (drawn or operator-killed).
    pub crashed: bool,
    /// Simulated seconds the device spent executing launches.
    pub busy_s: f64,
}

impl DeviceCounters {
    /// Total DRAM traffic of completed launches, in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.kernel.dram_bytes()
    }

    /// Tensor-core MMA operations of completed launches (both shapes).
    pub fn mma_ops(&self) -> u64 {
        self.kernel.mma_m16n16k16 + self.kernel.mma_m8n8k4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = KernelCounters { sectors_read: 1, l2_hits: 1, cuda_ops: 5, ..Default::default() };
        let b = KernelCounters {
            sectors_read: 2,
            dram_read_bytes: 64,
            mma_m16n16k16: 3,
            warps: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sectors_read, 3);
        assert_eq!(a.l2_hits, 1);
        assert_eq!(a.cuda_ops, 5);
        assert_eq!(a.dram_read_bytes, 64);
        assert_eq!(a.mma_m16n16k16, 3);
        assert_eq!(a.warps, 7);
    }

    #[test]
    fn hit_rate_bounds() {
        let c = KernelCounters { sectors_read: 10, l2_hits: 4, ..Default::default() };
        assert!((c.l2_hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(KernelCounters::default().l2_hit_rate(), 0.0);
    }

    #[test]
    fn dram_bytes_sums_read_write() {
        let c = KernelCounters { dram_read_bytes: 96, dram_write_bytes: 32, ..Default::default() };
        assert_eq!(c.dram_bytes(), 128);
    }
}
