//! Device-level fault modes for multi-GPU simulation.
//!
//! The bit-level injector ([`crate::fault`]) corrupts *values inside* a
//! kernel; this module models whole-device failures on the simulated
//! clock, the fleet-scale events a shard scheduler must survive:
//!
//! * **Crash** — the device is permanently lost. The in-flight launch
//!   never returns; the failure surfaces when the scheduler's heartbeat
//!   (one expected-duration interval) elapses, and every later launch on
//!   the device is refused.
//! * **Hang** — the launch never completes. Functionally nothing is
//!   produced; the scheduler detects it with a per-shard timeout and the
//!   device itself recovers once the kernel is killed.
//! * **Straggler** — the launch completes correctly but its modelled time
//!   is inflated by a seeded factor drawn in
//!   `[straggler_factor / 2, straggler_factor]`.
//!
//! Events are drawn per launch from the same counter-based RNG as the
//! bit-level injector, seeded per `(seed, device, launch index)`: a fleet
//! run is exactly reproducible, and with every rate zero not a single
//! draw happens (provably inert, like [`crate::fault::FaultConfig`]).

use crate::config::GpuConfig;
use crate::counters::DeviceCounters;
use crate::exec::Gpu;
use crate::fault::{FaultConfig, FaultInjector};

/// Per-device fault rates plus the RNG seed. All rates are per *launch*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFaultConfig {
    /// RNG seed; same seed ⇒ identical event sequence per device.
    pub seed: u64,
    /// Probability that a launch's device dies permanently.
    pub crash_rate: f64,
    /// Probability that a launch hangs (never completes; device survives
    /// once the kernel is killed on timeout).
    pub hang_rate: f64,
    /// Probability that a launch straggles.
    pub straggler_rate: f64,
    /// Maximum slowdown of a straggling launch; the factor is drawn
    /// uniformly in `[straggler_factor / 2, straggler_factor]`. Must be
    /// ≥ 1.
    pub straggler_factor: f64,
}

impl Default for DeviceFaultConfig {
    fn default() -> Self {
        DeviceFaultConfig::disabled()
    }
}

impl DeviceFaultConfig {
    /// No device faults: every rate zero (the factor keeps a sane default
    /// so enabling stragglers only needs a rate).
    pub fn disabled() -> Self {
        DeviceFaultConfig {
            seed: 0,
            crash_rate: 0.0,
            hang_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 8.0,
        }
    }

    /// True when any device-level event can fire.
    pub fn enabled(&self) -> bool {
        self.crash_rate > 0.0 || self.hang_rate > 0.0 || self.straggler_rate > 0.0
    }
}

/// The device-level outcome of one launch, drawn before execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceEvent {
    /// The launch completes normally.
    Completed,
    /// The launch completes with its modelled time multiplied by the
    /// carried factor (≥ 1).
    Straggle(f64),
    /// The launch never completes; only a timeout surfaces it.
    Hang,
    /// The device died; this launch and all future ones are lost.
    Crash,
}

/// One simulated GPU in a fleet: a [`Gpu`] instance plus device-level
/// fault state and cumulative [`DeviceCounters`].
pub struct SimDevice {
    id: usize,
    gpu: Gpu,
    faults: DeviceFaultConfig,
    launches: u64,
    alive: bool,
    counters: DeviceCounters,
}

impl SimDevice {
    /// Builds device `id` over its own [`Gpu`] instance. When bit-level
    /// injection is enabled in `config`, its seed is re-derived per device
    /// so fleet members draw independent fault sites.
    pub fn new(id: usize, mut config: GpuConfig, faults: DeviceFaultConfig) -> Self {
        if config.faults.enabled() {
            config.faults.seed = config
                .faults
                .seed
                .wrapping_add((id as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        }
        SimDevice {
            id,
            gpu: Gpu::new(config),
            faults,
            launches: 0,
            alive: true,
            counters: DeviceCounters { id: id as u64, ..DeviceCounters::default() },
        }
    }

    /// The device's index in its fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying simulated GPU (engines run on it directly).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// True until the device crashes (drawn or operator-killed).
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// The device-level fault configuration currently in force.
    pub fn faults(&self) -> &DeviceFaultConfig {
        &self.faults
    }

    /// Replaces the device-level fault configuration on a live device
    /// (chaos profiles start and stop bursts mid-stream). The launch
    /// counter keeps advancing, so later draws stay decorrelated.
    pub fn set_faults(&mut self, faults: DeviceFaultConfig) {
        self.faults = faults;
    }

    /// Replaces the bit-level fault configuration of this device's GPU
    /// (re-derived per device exactly like [`SimDevice::new`]).
    pub fn set_bit_faults(&mut self, mut faults: FaultConfig) {
        if faults.enabled() {
            faults.seed = faults
                .seed
                .wrapping_add((self.id as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        }
        self.gpu.config.faults = faults;
    }

    /// Operator kill switch: the device is permanently lost, as if a
    /// crash event had fired.
    pub fn kill(&mut self) {
        self.alive = false;
        self.counters.crashed = true;
    }

    /// Cumulative per-device counters.
    pub fn counters(&self) -> &DeviceCounters {
        &self.counters
    }

    /// Mutable counters (the scheduler records retries, speculative
    /// launches, and merged kernel counters here).
    pub fn counters_mut(&mut self) -> &mut DeviceCounters {
        &mut self.counters
    }

    /// Draws the device-level outcome of the next launch and advances the
    /// launch counter. A dead device always reports [`DeviceEvent::Crash`]
    /// without drawing. Draw order is fixed (crash, hang, straggle) so a
    /// fleet run replays bit-for-bit.
    pub fn next_event(&mut self) -> DeviceEvent {
        if !self.alive {
            return DeviceEvent::Crash;
        }
        let launch = self.launches;
        self.launches += 1;
        if !self.faults.enabled() {
            return DeviceEvent::Completed;
        }
        let cfg = FaultConfig { seed: self.faults.seed, ..FaultConfig::disabled() };
        let mut rng = FaultInjector::for_warp(cfg, launch, self.id as u64);
        if rng.chance(self.faults.crash_rate) {
            self.alive = false;
            self.counters.crashed = true;
            return DeviceEvent::Crash;
        }
        if rng.chance(self.faults.hang_rate) {
            return DeviceEvent::Hang;
        }
        if rng.chance(self.faults.straggler_rate) {
            let f = self.faults.straggler_factor.max(1.0);
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            return DeviceEvent::Straggle((f / 2.0 + u * f / 2.0).max(1.0));
        }
        DeviceEvent::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l40() -> GpuConfig {
        GpuConfig::l40()
    }

    #[test]
    fn disabled_config_never_draws_and_always_completes() {
        let mut d = SimDevice::new(0, l40(), DeviceFaultConfig::disabled());
        for _ in 0..64 {
            assert_eq!(d.next_event(), DeviceEvent::Completed);
        }
        assert!(d.alive());
        assert!(!DeviceFaultConfig::disabled().enabled());
    }

    #[test]
    fn event_stream_is_deterministic_per_seed() {
        let faults = DeviceFaultConfig {
            seed: 42,
            crash_rate: 0.02,
            hang_rate: 0.1,
            straggler_rate: 0.3,
            ..DeviceFaultConfig::disabled()
        };
        let run = |id: usize| {
            let mut d = SimDevice::new(id, l40(), faults);
            (0..200).map(|_| d.next_event()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "devices draw independent streams");
    }

    #[test]
    fn crash_is_permanent() {
        let faults =
            DeviceFaultConfig { seed: 7, crash_rate: 1.0, ..DeviceFaultConfig::disabled() };
        let mut d = SimDevice::new(3, l40(), faults);
        assert_eq!(d.next_event(), DeviceEvent::Crash);
        assert!(!d.alive());
        assert!(d.counters().crashed);
        // Even after clearing the rates the device stays dead.
        d.set_faults(DeviceFaultConfig::disabled());
        assert_eq!(d.next_event(), DeviceEvent::Crash);
    }

    #[test]
    fn straggle_factor_stays_in_band() {
        let faults = DeviceFaultConfig {
            seed: 11,
            straggler_rate: 1.0,
            straggler_factor: 6.0,
            ..DeviceFaultConfig::disabled()
        };
        let mut d = SimDevice::new(0, l40(), faults);
        let mut straggles = 0;
        for _ in 0..100 {
            if let DeviceEvent::Straggle(f) = d.next_event() {
                assert!((3.0..=6.0).contains(&f), "factor {f}");
                straggles += 1;
            }
        }
        assert_eq!(straggles, 100);
    }

    #[test]
    fn rates_track_probability() {
        let faults = DeviceFaultConfig {
            seed: 23,
            hang_rate: 0.25,
            ..DeviceFaultConfig::disabled()
        };
        let mut d = SimDevice::new(0, l40(), faults);
        let hangs = (0..2000).filter(|_| d.next_event() == DeviceEvent::Hang).count();
        assert!((400..600).contains(&hangs), "got {hangs}");
    }

    #[test]
    fn kill_switch_matches_crash_semantics() {
        let mut d = SimDevice::new(5, l40(), DeviceFaultConfig::disabled());
        d.kill();
        assert!(!d.alive());
        assert_eq!(d.next_event(), DeviceEvent::Crash);
        assert!(d.counters().crashed);
    }

    #[test]
    fn bit_fault_seed_is_decorrelated_per_device() {
        let mut cfg = l40();
        cfg.faults = FaultConfig::uniform(9, 0.5);
        let a = SimDevice::new(0, cfg.clone(), DeviceFaultConfig::disabled());
        let b = SimDevice::new(1, cfg, DeviceFaultConfig::disabled());
        assert_ne!(a.gpu().config.faults.seed, b.gpu().config.faults.seed);
    }
}
