//! SimSan — a shadow-state sanitizer for the warp-lockstep executor.
//!
//! The Spaden kernels are exactly the kind of code where a silent
//! out-of-bounds read, an uninitialized fragment register or an f16
//! overflow produces a *plausible* wrong answer instead of a crash: a
//! hand-laid register↔lane↔element mapping driving an f16-in/f32-out MMA.
//! SimSan watches every access a kernel makes through [`crate::WarpCtx`]
//! and turns such events into typed, reproducible reports.
//!
//! ## Shadow-state model
//!
//! The [`crate::Gpu`] bump allocator hands out 256-byte-aligned,
//! non-overlapping allocations. When SimSan is on, every allocation is
//! recorded in a host-side shadow table ([`ShadowState`]); the span
//! `[base, base + data_bytes)` is *initialized data*, the alignment tail
//! `[base + data_bytes, base + alloc_bytes)` is *allocated but
//! uninitialized*, and everything else is *unmapped*. At launch the table
//! is snapshotted (kernels cannot allocate mid-launch), so per-warp checks
//! are lock-free. An access is classified per lane:
//!
//! * index within the buffer → OK (plus read-after-write race checks),
//! * address inside the alignment tail → [`HazardKind::UninitRead`],
//! * address past the allocation → [`HazardKind::OutOfBounds`],
//! * buffer freed via [`crate::Gpu::free`] → [`HazardKind::UseAfterFree`].
//!
//! ## Conflict detection
//!
//! Plain (non-atomic) global stores are logged while SimSan is on. Two
//! lanes of one warp storing to the same address in the same instruction
//! is a [`HazardKind::LaneRace`]; plain stores to one address from two
//! different warps is a [`HazardKind::WriteRace`]; a mix of plain and
//! atomic writes on one address is a [`HazardKind::AtomicConflict`]; a
//! warp gathering from an address it plain-stored earlier in the same
//! launch is a [`HazardKind::WriteReadRace`]. Cross-warp conflicts are
//! found in a deterministic post-pass over the merged write log.
//!
//! ## Numerical guard rails
//!
//! Fragment writes round f32 through IEEE binary16 ([`crate::half::F16`]).
//! SimSan classifies every conversion ([`F16::convert_hazard`]): finite
//! values rounding to ±Inf are [`HazardKind::F16Overflow`], nonzero values
//! at or above [`SanConfig::underflow_tol`] rounding to zero are
//! [`HazardKind::F16Underflow`], and NaNs are [`HazardKind::NanProduced`].
//! MMA results are scanned per block for non-finite accumulators. The
//! engine layer surfaces these as `EngineError::NumericalHazard`, which
//! the serving ladder treats as a verification failure (demote, don't
//! return poisoned results).
//!
//! ## Determinism and cost
//!
//! Reports carry `(kind, warp, lane, address, kernel step)` and are merged
//! in fixed shard order, so a violation is reproducible from the fault
//! seed alone. With SimSan off (`SanConfig::disabled`, the default on
//! every preset) the executor takes no per-access branches beyond one
//! `Option` check, allocations are not tracked, and outputs and counters
//! are bit-identical to a build without the sanitizer.

use crate::half::{ConvertHazard, F16};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sanitizer configuration, carried on [`crate::GpuConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanConfig {
    /// Master switch. Off by default on every preset.
    pub enabled: bool,
    /// Minimum magnitude at which an f16 underflow-to-zero is reported.
    /// Values smaller than this are treated as negligible accumulation
    /// noise rather than lost signal.
    pub underflow_tol: f32,
}

impl SanConfig {
    /// Sanitizer off (the default): zero cost, zero behaviour change.
    pub fn disabled() -> Self {
        SanConfig { enabled: false, underflow_tol: 1e-12 }
    }

    /// Sanitizer on with the default underflow tolerance.
    pub fn on() -> Self {
        SanConfig { enabled: true, underflow_tol: 1e-12 }
    }
}

impl Default for SanConfig {
    fn default() -> Self {
        SanConfig::disabled()
    }
}

/// The hazard taxonomy (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// A lane addressed memory past its buffer's allocation.
    OutOfBounds,
    /// A lane read the allocated-but-uninitialized alignment tail.
    UninitRead,
    /// An access to a buffer after [`crate::Gpu::free`].
    UseAfterFree,
    /// Host-side allocator misuse: double free or free of an unknown base.
    AllocMisuse,
    /// Two lanes of one warp stored to one address in one instruction.
    LaneRace,
    /// Plain stores to one address from two different warps.
    WriteRace,
    /// A warp gathered from an address it plain-stored earlier.
    WriteReadRace,
    /// Plain and atomic writes mixed on one address.
    AtomicConflict,
    /// A fragment register access inconsistent with the m16n16k16 mapping.
    FragmentMapping,
    /// An f16 conversion or MMA accumulator reached ±Inf.
    F16Overflow,
    /// A value at or above the tolerance rounded to zero in f16.
    F16Underflow,
    /// A NaN was produced or propagated.
    NanProduced,
}

impl HazardKind {
    /// Short stable name, used in reports and harness tables.
    pub fn name(&self) -> &'static str {
        match self {
            HazardKind::OutOfBounds => "out-of-bounds",
            HazardKind::UninitRead => "uninit-read",
            HazardKind::UseAfterFree => "use-after-free",
            HazardKind::AllocMisuse => "alloc-misuse",
            HazardKind::LaneRace => "lane-race",
            HazardKind::WriteRace => "write-race",
            HazardKind::WriteReadRace => "write-read-race",
            HazardKind::AtomicConflict => "atomic-conflict",
            HazardKind::FragmentMapping => "fragment-mapping",
            HazardKind::F16Overflow => "f16-overflow",
            HazardKind::F16Underflow => "f16-underflow",
            HazardKind::NanProduced => "nan-produced",
        }
    }

    /// True for the numerical guard-rail kinds (the ones the engine layer
    /// surfaces as `EngineError::NumericalHazard`).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            HazardKind::F16Overflow | HazardKind::F16Underflow | HazardKind::NanProduced
        )
    }
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One sanitizer finding: what, where, and at which kernel step.
#[derive(Debug, Clone, PartialEq)]
pub struct SanReport {
    /// Hazard class.
    pub kind: HazardKind,
    /// Warp that triggered it (`None` for host-side findings).
    pub warp: Option<usize>,
    /// Offending lane, when one lane is identifiable.
    pub lane: Option<usize>,
    /// Device byte address involved, when the hazard has one.
    pub addr: Option<u64>,
    /// Per-warp instruction step at which the hazard fired (0-based count
    /// of sanitized instructions the warp had issued).
    pub step: u64,
    /// The executor operation that detected it (e.g. `"gather"`).
    pub op: &'static str,
}

impl fmt::Display for SanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAN {} in {}", self.kind, self.op)?;
        match self.warp {
            Some(w) => write!(f, " warp={w}")?,
            None => write!(f, " host")?,
        }
        if let Some(l) = self.lane {
            write!(f, " lane={l}")?;
        }
        if let Some(a) = self.addr {
            write!(f, " addr={a:#x}")?;
        }
        write!(f, " step={}", self.step)
    }
}

/// One logged global store (plain or atomic) for conflict detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// Device byte address written.
    pub addr: u64,
    /// Writing warp.
    pub warp: u32,
    /// The warp's instruction step of the write.
    pub step: u32,
    /// Writing lane.
    pub lane: u8,
    /// True for atomic adds, false for plain stores.
    pub atomic: bool,
}

/// One tracked allocation in the shadow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// Base device address (256-byte aligned).
    pub base: u64,
    /// Bytes of initialized data.
    pub data_bytes: u64,
    /// Bytes reserved (data plus alignment tail).
    pub alloc_bytes: u64,
    /// True after [`crate::Gpu::free`].
    pub freed: bool,
}

/// 256-byte allocation rounding, mirroring the `Gpu` bump allocator (and
/// cudaMalloc's granularity).
pub(crate) fn aligned256(bytes: u64) -> u64 {
    bytes.div_ceil(256) * 256
}

/// Host-side shadow state: the allocation table, the report sink, and the
/// numeric-hazard tallies engines snapshot around a run.
#[derive(Debug, Default)]
pub struct ShadowState {
    allocs: Mutex<Vec<AllocRecord>>,
    reports: Mutex<Vec<SanReport>>,
    overflow: AtomicU64,
    underflow: AtomicU64,
    nan: AtomicU64,
}

impl ShadowState {
    /// Records a fresh allocation (bases are strictly increasing).
    pub(crate) fn register(&self, base: u64, data_bytes: u64, alloc_bytes: u64) {
        let mut a = self.allocs.lock().unwrap();
        a.push(AllocRecord { base, data_bytes, alloc_bytes, freed: false });
    }

    /// Marks the allocation at `base` freed; double frees and unknown
    /// bases become host-side [`HazardKind::AllocMisuse`] reports.
    pub(crate) fn free(&self, base: u64) {
        let misuse = {
            let mut a = self.allocs.lock().unwrap();
            match a.iter_mut().find(|r| r.base == base) {
                Some(r) if r.freed => Some("double-free"),
                Some(r) => {
                    r.freed = true;
                    None
                }
                None => Some("free-unknown"),
            }
        };
        if let Some(op) = misuse {
            self.reports.lock().unwrap().push(SanReport {
                kind: HazardKind::AllocMisuse,
                warp: None,
                lane: None,
                addr: Some(base),
                step: 0,
                op,
            });
        }
    }

    /// Immutable copy of the allocation table for one launch.
    pub(crate) fn snapshot(&self) -> Arc<Vec<AllocRecord>> {
        Arc::new(self.allocs.lock().unwrap().clone())
    }

    /// Merges one launch's reports into the sink and the numeric tallies.
    pub(crate) fn absorb(&self, reports: Vec<SanReport>) {
        for r in &reports {
            match r.kind {
                HazardKind::F16Overflow => self.overflow.fetch_add(1, Ordering::Relaxed),
                HazardKind::F16Underflow => self.underflow.fetch_add(1, Ordering::Relaxed),
                HazardKind::NanProduced => self.nan.fetch_add(1, Ordering::Relaxed),
                _ => 0,
            };
        }
        self.reports.lock().unwrap().extend(reports);
    }

    /// Drains all accumulated reports.
    pub(crate) fn take_reports(&self) -> Vec<SanReport> {
        std::mem::take(&mut self.reports.lock().unwrap())
    }

    /// Cumulative `(overflow, underflow, nan)` counts since construction.
    /// Monotonic; engines snapshot before/after a run to attribute
    /// hazards to it without consuming the report sink.
    pub(crate) fn numeric_counts(&self) -> (u64, u64, u64) {
        (
            self.overflow.load(Ordering::Relaxed),
            self.underflow.load(Ordering::Relaxed),
            self.nan.load(Ordering::Relaxed),
        )
    }
}

/// Per-shard sanitizer context, carried on `WarpCtx` while SimSan is on.
/// Reports and the write log accumulate across the shard's warps; the
/// launch merges them in shard order, so output is deterministic.
#[derive(Debug)]
pub(crate) struct SanCtx {
    pub(crate) cfg: SanConfig,
    allocs: Arc<Vec<AllocRecord>>,
    warp: usize,
    step: u64,
    pub(crate) reports: Vec<SanReport>,
    pub(crate) writes: Vec<WriteRecord>,
    // Start of the current warp's records in `writes` (for the
    // read-after-write scan, which is intra-warp only).
    warp_writes_from: usize,
}

impl SanCtx {
    pub(crate) fn new(cfg: SanConfig, allocs: Arc<Vec<AllocRecord>>) -> Self {
        SanCtx { cfg, allocs, warp: 0, step: 0, reports: Vec::new(), writes: Vec::new(), warp_writes_from: 0 }
    }

    /// Resets per-warp state at the start of a warp's execution.
    pub(crate) fn begin_warp(&mut self, warp: usize) {
        self.warp = warp;
        self.step = 0;
        self.warp_writes_from = self.writes.len();
    }

    fn alloc_of(&self, base: u64) -> Option<&AllocRecord> {
        let i = self.allocs.binary_search_by_key(&base, |r| r.base).ok()?;
        Some(&self.allocs[i])
    }

    fn report(&mut self, kind: HazardKind, lane: Option<usize>, addr: Option<u64>, op: &'static str) {
        self.reports.push(SanReport { kind, warp: Some(self.warp), lane, addr, step: self.step, op });
    }

    /// Checks one warp-wide read instruction over `(lane, element index)`
    /// pairs of a buffer with the given base, length and element size.
    pub(crate) fn check_read(
        &mut self,
        base: u64,
        len: usize,
        elem_bytes: u64,
        lanes: impl Iterator<Item = (usize, u64)>,
        op: &'static str,
    ) {
        self.step += 1;
        let rec = self.alloc_of(base).copied();
        if let Some(r) = rec {
            if r.freed {
                self.report(HazardKind::UseAfterFree, None, Some(base), op);
            }
        }
        let data_end = base + len as u64 * elem_bytes;
        let alloc_end = match rec {
            Some(r) => r.base + r.alloc_bytes,
            // Untracked buffer (host-constructed in tests): assume the
            // allocator's alignment tail.
            None => base + aligned256(len as u64 * elem_bytes),
        };
        for (lane, i) in lanes {
            let addr = base + i * elem_bytes;
            if i >= len as u64 {
                let kind = if addr >= data_end && addr < alloc_end {
                    HazardKind::UninitRead
                } else {
                    HazardKind::OutOfBounds
                };
                self.report(kind, Some(lane), Some(addr), op);
            } else if self.writes[self.warp_writes_from..]
                .iter()
                .any(|w| !w.atomic && w.addr == addr)
            {
                self.report(HazardKind::WriteReadRace, Some(lane), Some(addr), op);
            }
        }
    }

    /// Checks and logs one warp-wide store instruction. Returns a lane
    /// mask of writes that must be suppressed (out of bounds).
    pub(crate) fn check_writes(
        &mut self,
        base: u64,
        len: usize,
        lanes: impl Iterator<Item = (usize, u64)>,
        atomic: bool,
        op: &'static str,
    ) {
        self.step += 1;
        let mut seen: Vec<u64> = Vec::new();
        for (lane, i) in lanes {
            let addr = base + i * 4;
            if i >= len as u64 {
                self.report(HazardKind::OutOfBounds, Some(lane), Some(addr), op);
                continue;
            }
            if !atomic {
                if seen.contains(&addr) {
                    self.report(HazardKind::LaneRace, Some(lane), Some(addr), op);
                }
                seen.push(addr);
            }
            self.writes.push(WriteRecord {
                addr,
                warp: self.warp as u32,
                step: self.step as u32,
                lane: lane as u8,
                atomic,
            });
        }
    }

    /// Logs the *intent* of an atomic that the fault injector demoted to a
    /// plain store: both records land at the address, so the post-pass
    /// reports a deterministic [`HazardKind::AtomicConflict`].
    pub(crate) fn log_demoted_atomic(&mut self, base: u64, i: u64, lane: usize) {
        let addr = base + i * 4;
        for atomic in [true, false] {
            self.writes.push(WriteRecord {
                addr,
                warp: self.warp as u32,
                step: self.step as u32,
                lane: lane as u8,
                atomic,
            });
        }
    }

    /// Checks one warp-wide pair of fragment register writes: the actual
    /// register base per lane must be the even base of a diagonal 8×8
    /// portion (the m16n16k16 mapping's TL/BR pair homes, regs {0,1} and
    /// {6,7}), and every value is classified for f16 conversion hazards.
    pub(crate) fn check_frag_pairs(
        &mut self,
        bases: impl Iterator<Item = (usize, usize)>,
        vals: &[Option<(f32, f32)>],
        op: &'static str,
    ) {
        self.step += 1;
        for (lane, rb) in bases {
            let diagonal = rb % 2 == 0 && rb + 1 < crate::fragment::REGS_PER_LANE && rb / 4 == (rb % 4) / 2;
            if !diagonal {
                self.report(HazardKind::FragmentMapping, Some(lane), None, op);
            }
        }
        let mut found: [Option<usize>; 3] = [None; 3];
        for (lane, v) in vals.iter().enumerate() {
            let Some((v0, v1)) = v else { continue };
            for v in [v0, v1] {
                if let Some(h) = F16::convert_hazard(*v, self.cfg.underflow_tol) {
                    let slot = &mut found[h as usize];
                    if slot.is_none() {
                        *slot = Some(lane);
                    }
                }
            }
        }
        for (h, kind) in [
            (ConvertHazard::Overflow, HazardKind::F16Overflow),
            (ConvertHazard::Underflow, HazardKind::F16Underflow),
            (ConvertHazard::Nan, HazardKind::NanProduced),
        ] {
            if let Some(lane) = found[h as usize] {
                self.report(kind, Some(lane), None, op);
            }
        }
    }

    /// Scans an MMA result fragment for non-finite accumulators (one
    /// report per kind per MMA — "per block" granularity).
    pub(crate) fn check_mma_result(&mut self, regs: &[[f32; 8]; 32]) {
        self.step += 1;
        let mut inf = None;
        let mut nan = None;
        for (lane, r) in regs.iter().enumerate() {
            for v in r {
                if v.is_nan() {
                    nan.get_or_insert(lane);
                } else if v.is_infinite() {
                    inf.get_or_insert(lane);
                }
            }
        }
        if let Some(lane) = inf {
            self.report(HazardKind::F16Overflow, Some(lane), None, "mma");
        }
        if let Some(lane) = nan {
            self.report(HazardKind::NanProduced, Some(lane), None, "mma");
        }
    }
}

/// Deterministic post-pass over one launch's merged write log: flags
/// plain stores to one address from different warps ([`HazardKind::WriteRace`])
/// and plain/atomic mixes on one address ([`HazardKind::AtomicConflict`]),
/// one report per address per kind.
pub(crate) fn cross_warp_conflicts(writes: &mut [WriteRecord]) -> Vec<SanReport> {
    writes.sort_unstable_by_key(|w| (w.addr, w.atomic, w.warp, w.step, w.lane));
    let mut out = Vec::new();
    let mut i = 0;
    while i < writes.len() {
        let addr = writes[i].addr;
        let mut j = i;
        while j < writes.len() && writes[j].addr == addr {
            j += 1;
        }
        let group = &writes[i..j];
        let first_plain = group.iter().find(|w| !w.atomic);
        let has_atomic = group.iter().any(|w| w.atomic);
        if let Some(p) = first_plain {
            if let Some(q) = group.iter().find(|w| !w.atomic && w.warp != p.warp) {
                out.push(SanReport {
                    kind: HazardKind::WriteRace,
                    warp: Some(q.warp as usize),
                    lane: Some(q.lane as usize),
                    addr: Some(addr),
                    step: q.step as u64,
                    op: "store",
                });
            }
            if has_atomic {
                out.push(SanReport {
                    kind: HazardKind::AtomicConflict,
                    warp: Some(p.warp as usize),
                    lane: Some(p.lane as usize),
                    addr: Some(addr),
                    step: p.step as u64,
                    op: "store",
                });
            }
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(base: u64, data: u64) -> AllocRecord {
        AllocRecord { base, data_bytes: data, alloc_bytes: aligned256(data), freed: false }
    }

    fn ctx(allocs: Vec<AllocRecord>) -> SanCtx {
        let mut c = SanCtx::new(SanConfig::on(), Arc::new(allocs));
        c.begin_warp(0);
        c
    }

    #[test]
    fn read_classification_data_pad_beyond() {
        // 100 f32 = 400 data bytes, 512 allocated: indices 100..127 are
        // the uninitialized tail, 128+ are out of bounds.
        let mut c = ctx(vec![rec(0x1000, 400)]);
        c.check_read(0x1000, 100, 4, [(0usize, 50u64), (1, 100), (2, 127), (3, 128)].into_iter(), "gather");
        assert_eq!(c.reports.len(), 3);
        assert_eq!(c.reports[0].kind, HazardKind::UninitRead);
        assert_eq!(c.reports[0].lane, Some(1));
        assert_eq!(c.reports[1].kind, HazardKind::UninitRead);
        assert_eq!(c.reports[2].kind, HazardKind::OutOfBounds);
        assert_eq!(c.reports[2].addr, Some(0x1000 + 128 * 4));
    }

    #[test]
    fn use_after_free_flagged_once_per_instruction() {
        let mut r = rec(0x2000, 64);
        r.freed = true;
        let mut c = ctx(vec![r]);
        c.check_read(0x2000, 16, 4, [(0usize, 0u64), (1, 1)].into_iter(), "gather");
        assert_eq!(c.reports.len(), 1);
        assert_eq!(c.reports[0].kind, HazardKind::UseAfterFree);
    }

    #[test]
    fn lane_race_and_raw_detection() {
        let mut c = ctx(vec![rec(0x1000, 400)]);
        // Lanes 0 and 5 store to the same element: lane race.
        c.check_writes(0x1000, 100, [(0usize, 7u64), (5, 7), (6, 8)].into_iter(), false, "scatter");
        assert_eq!(c.reports.len(), 1);
        assert_eq!(c.reports[0].kind, HazardKind::LaneRace);
        assert_eq!(c.reports[0].lane, Some(5));
        // The same warp now gathers element 8: read-after-write.
        c.check_read(0x1000, 100, 4, [(0usize, 8u64)].into_iter(), "gather");
        assert_eq!(c.reports[1].kind, HazardKind::WriteReadRace);
        // A different warp reading it is not an intra-warp hazard.
        c.begin_warp(1);
        c.check_read(0x1000, 100, 4, [(0usize, 8u64)].into_iter(), "gather");
        assert_eq!(c.reports.len(), 2);
    }

    #[test]
    fn cross_warp_write_race_and_atomic_conflict() {
        let w = |addr, warp, atomic| WriteRecord { addr, warp, step: 1, lane: 0, atomic };
        // addr 0x10: plain stores from warps 0 and 2 -> WriteRace.
        // addr 0x20: plain from warp 1 + atomic from warp 3 -> AtomicConflict.
        // addr 0x30: atomics only -> clean. addr 0x40: one plain -> clean.
        let mut log = vec![
            w(0x40, 5, false),
            w(0x10, 2, false),
            w(0x20, 3, true),
            w(0x10, 0, false),
            w(0x30, 6, true),
            w(0x30, 7, true),
            w(0x20, 1, false),
        ];
        let mut reports = cross_warp_conflicts(&mut log);
        reports.sort_by_key(|r| r.addr);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].kind, HazardKind::WriteRace);
        assert_eq!(reports[0].addr, Some(0x10));
        assert_eq!(reports[0].warp, Some(2), "reported at the second distinct warp");
        assert_eq!(reports[1].kind, HazardKind::AtomicConflict);
        assert_eq!(reports[1].addr, Some(0x20));
    }

    #[test]
    fn fragment_mapping_checker_accepts_only_diagonal_bases() {
        for rb in 0..crate::fragment::REGS_PER_LANE {
            let mut c = ctx(vec![]);
            c.check_frag_pairs([(3usize, rb)].into_iter(), &[], "frag");
            let ok = rb == 0 || rb == 6;
            assert_eq!(c.reports.is_empty(), ok, "reg base {rb}");
            if !ok {
                assert_eq!(c.reports[0].kind, HazardKind::FragmentMapping);
                assert_eq!(c.reports[0].lane, Some(3));
            }
        }
    }

    #[test]
    fn numeric_hazards_classified_per_call() {
        let mut c = ctx(vec![]);
        let vals = [
            Some((1.0f32, 2.0f32)),
            Some((1e6, 0.5)),        // overflows f16
            Some((f32::NAN, 0.0)),   // NaN
            Some((1e-20, 3.0)),      // below tolerance: ignored
            Some((1e-9, 3.0)),       // underflow above tolerance
            None,
        ];
        c.check_frag_pairs(std::iter::empty(), &vals, "frag");
        let kinds: Vec<_> = c.reports.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![HazardKind::F16Overflow, HazardKind::F16Underflow, HazardKind::NanProduced]
        );
        assert_eq!(c.reports[0].lane, Some(1));
        assert_eq!(c.reports[1].lane, Some(4));
        assert_eq!(c.reports[2].lane, Some(2));
    }

    #[test]
    fn mma_scan_reports_inf_and_nan_once() {
        let mut c = ctx(vec![]);
        let mut regs = [[0.0f32; 8]; 32];
        regs[4][2] = f32::INFINITY;
        regs[9][1] = f32::NAN;
        regs[20][0] = f32::NEG_INFINITY;
        c.check_mma_result(&regs);
        assert_eq!(c.reports.len(), 2);
        assert_eq!(c.reports[0].kind, HazardKind::F16Overflow);
        assert_eq!(c.reports[0].lane, Some(4));
        assert_eq!(c.reports[1].kind, HazardKind::NanProduced);
        assert_eq!(c.reports[1].lane, Some(9));
    }

    #[test]
    fn shadow_free_misuse_reports() {
        let sh = ShadowState::default();
        sh.register(0x1000, 100, 256);
        sh.free(0x1000);
        sh.free(0x1000); // double free
        sh.free(0x9999); // never allocated
        let reports = sh.take_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.kind == HazardKind::AllocMisuse && r.warp.is_none()));
        assert_eq!(reports[0].op, "double-free");
        assert_eq!(reports[1].op, "free-unknown");
        assert!(sh.take_reports().is_empty(), "drained");
    }

    #[test]
    fn report_display_is_informative() {
        let r = SanReport {
            kind: HazardKind::OutOfBounds,
            warp: Some(3),
            lane: Some(7),
            addr: Some(0x1200),
            step: 42,
            op: "gather",
        };
        let s = r.to_string();
        assert!(s.contains("out-of-bounds"), "{s}");
        assert!(s.contains("warp=3"), "{s}");
        assert!(s.contains("lane=7"), "{s}");
        assert!(s.contains("0x1200"), "{s}");
        assert!(s.contains("step=42"), "{s}");
    }

    #[test]
    fn disabled_config_is_default() {
        assert_eq!(SanConfig::default(), SanConfig::disabled());
        assert!(!SanConfig::default().enabled);
        assert!(SanConfig::on().enabled);
    }
}
