//! The WMMA 16×16 fragment with the register↔lane↔element mapping the
//! paper reverse-engineers in Section 3.
//!
//! Figure 1: a 16×16 fragment held by a warp of 32 threads consists of four
//! repeated 8×8 portions; within each portion one thread controls two
//! consecutive elements, and every thread handles 8 elements across the 4
//! portions.
//!
//! Figure 2 (obtained by writing `fragment.x[i] = i` in every thread):
//! register pair `x[0,1]` maps to the **top-left** portion, `x[2,3]` to the
//! top-right, `x[4,5]` to the bottom-left and `x[6,7]` to the
//! **bottom-right** — the two portions Spaden uses for its diagonal
//! two-block packing.
//!
//! For the row-major `MatrixA` operand and the accumulator, thread
//! `lane = (r % 8) * 4 + (c % 8) / 2` holds columns `c` and `c + 1` of row
//! `r` in consecutive registers. The `MatrixB` operand is transposed
//! within each portion (`lane = (c % 8) * 4 + (r % 8) / 2`), which is why
//! Algorithm 2 of the paper fetches the input vector with the
//! `(lid & 3) << 1` pattern: each B-fragment thread holds two consecutive
//! *rows* of one column.

use crate::half::F16;

/// Fragment edge length (the paper's fixed `<16, 16, 16>` MMA shape).
pub const FRAG_DIM: usize = 16;
/// Registers holding fragment data in each thread ("the valid register
/// indices of the fragment only range from 0 to 7", Section 3).
pub const REGS_PER_LANE: usize = 8;
/// Threads per warp.
pub const LANES: usize = 32;

/// Which operand of `D = A × B + C` a fragment holds. A and B are
/// half-precision (values are rounded through f16 on write); the
/// accumulator is f32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragKind {
    /// Row-major left operand (f16).
    MatrixA,
    /// Right operand (f16), transposed intra-portion layout.
    MatrixB,
    /// f32 accumulator / result.
    Accumulator,
}

/// A 16×16 tensor-core fragment: 32 lanes × 8 registers of f32 storage.
///
/// `regs[lane][reg]` is the model of `fragment.x[reg]` in thread `lane` —
/// kernels may write registers directly, exactly like the paper's
/// register-level access, or use the WMMA-style whole-matrix API.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Operand kind; fixes the layout mapping and the write rounding.
    pub kind: FragKind,
    /// Per-lane registers: `regs[lane][reg]`.
    pub regs: [[f32; REGS_PER_LANE]; LANES],
}

impl Fragment {
    /// A zero-filled fragment (`wmma::fill_fragment(frag, 0)`).
    pub fn new(kind: FragKind) -> Self {
        Fragment { kind, regs: [[0.0; REGS_PER_LANE]; LANES] }
    }

    /// The (lane, register) pair holding element `(r, c)` — the mapping the
    /// paper establishes by reverse engineering.
    #[inline]
    pub fn lane_reg(kind: FragKind, r: usize, c: usize) -> (usize, usize) {
        debug_assert!(r < FRAG_DIM && c < FRAG_DIM);
        let (pr, pc) = (r / 8, c / 8); // portion coordinates
        let (rr, cc) = (r % 8, c % 8); // intra-portion coordinates
        match kind {
            FragKind::MatrixA | FragKind::Accumulator => {
                let lane = rr * 4 + cc / 2;
                let reg = (cc % 2) + 2 * pc + 4 * pr;
                (lane, reg)
            }
            FragKind::MatrixB => {
                let lane = cc * 4 + rr / 2;
                let reg = (rr % 2) + 2 * pc + 4 * pr;
                (lane, reg)
            }
        }
    }

    /// Inverse of [`Fragment::lane_reg`]: the element `(r, c)` stored in
    /// `(lane, reg)`.
    #[inline]
    pub fn element_of(kind: FragKind, lane: usize, reg: usize) -> (usize, usize) {
        debug_assert!(lane < LANES && reg < REGS_PER_LANE);
        let pr = reg / 4;
        let pc = (reg % 4) / 2;
        let low = reg % 2;
        match kind {
            FragKind::MatrixA | FragKind::Accumulator => {
                let rr = lane / 4;
                let cc = 2 * (lane % 4) + low;
                (pr * 8 + rr, pc * 8 + cc)
            }
            FragKind::MatrixB => {
                let cc = lane / 4;
                let rr = 2 * (lane % 4) + low;
                (pr * 8 + rr, pc * 8 + cc)
            }
        }
    }

    /// Writes element `(r, c)`. A/B operands round the value through f16,
    /// modelling the half-precision fragment storage.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let (lane, reg) = Self::lane_reg(self.kind, r, c);
        self.regs[lane][reg] = match self.kind {
            FragKind::Accumulator => v,
            _ => F16::round_f32(v),
        };
    }

    /// Reads element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let (lane, reg) = Self::lane_reg(self.kind, r, c);
        self.regs[lane][reg]
    }

    /// Writes register `reg` of `lane` directly — the paper's
    /// `fragment.x[i] = value`. A/B operands round through f16.
    #[inline]
    pub fn write_reg(&mut self, lane: usize, reg: usize, v: f32) {
        self.regs[lane][reg] = match self.kind {
            FragKind::Accumulator => v,
            _ => F16::round_f32(v),
        };
    }

    /// Reads register `reg` of `lane` directly (`fragment.x[i]`).
    #[inline]
    pub fn read_reg(&self, lane: usize, reg: usize) -> f32 {
        self.regs[lane][reg]
    }

    /// Fills every element (`wmma::fill_fragment`).
    pub fn fill(&mut self, v: f32) {
        let v = match self.kind {
            FragKind::Accumulator => v,
            _ => F16::round_f32(v),
        };
        for lane in self.regs.iter_mut() {
            lane.fill(v);
        }
    }

    /// Loads a row-major 16×16 matrix (`wmma::load_matrix_sync`).
    pub fn load_matrix(&mut self, m: &[f32; FRAG_DIM * FRAG_DIM]) {
        for r in 0..FRAG_DIM {
            for c in 0..FRAG_DIM {
                self.set(r, c, m[r * FRAG_DIM + c]);
            }
        }
    }

    /// Stores to a row-major 16×16 matrix (`wmma::store_matrix_sync`).
    pub fn store_matrix(&self) -> [f32; FRAG_DIM * FRAG_DIM] {
        let mut m = [0.0f32; FRAG_DIM * FRAG_DIM];
        for r in 0..FRAG_DIM {
            for c in 0..FRAG_DIM {
                m[r * FRAG_DIM + c] = self.get(r, c);
            }
        }
        m
    }

    /// The Section-3 experiment: set `fragment.x[i] = i` in every thread
    /// and store — the resulting grid of register indices is Figure 2.
    pub fn layout_experiment(kind: FragKind) -> [[u8; FRAG_DIM]; FRAG_DIM] {
        let mut grid = [[0u8; FRAG_DIM]; FRAG_DIM];
        for (r, row) in grid.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                let (_, reg) = Self::lane_reg(kind, r, c);
                *cell = reg as u8;
            }
        }
        grid
    }

    /// The Figure-1 companion: which lane holds each element.
    pub fn lane_map(kind: FragKind) -> [[u8; FRAG_DIM]; FRAG_DIM] {
        let mut grid = [[0u8; FRAG_DIM]; FRAG_DIM];
        for (r, row) in grid.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                let (lane, _) = Self::lane_reg(kind, r, c);
                *cell = lane as u8;
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_bijective_for_all_kinds() {
        for kind in [FragKind::MatrixA, FragKind::MatrixB, FragKind::Accumulator] {
            let mut seen = [[false; REGS_PER_LANE]; LANES];
            for r in 0..FRAG_DIM {
                for c in 0..FRAG_DIM {
                    let (lane, reg) = Fragment::lane_reg(kind, r, c);
                    assert!(!seen[lane][reg], "{kind:?}: ({lane},{reg}) reused");
                    seen[lane][reg] = true;
                    assert_eq!(Fragment::element_of(kind, lane, reg), (r, c));
                }
            }
            assert!(seen.iter().flatten().all(|&s| s), "{kind:?}: slots unused");
        }
    }

    #[test]
    fn figure2_portion_register_pairs() {
        // Figure 2: TL portion shows registers 0/1, TR 2/3, BL 4/5, BR 6/7.
        let grid = Fragment::layout_experiment(FragKind::Accumulator);
        for r in 0..FRAG_DIM {
            for c in 0..FRAG_DIM {
                let pair = grid[r][c] & !1; // even base of the register pair
                let expected = 2 * ((c / 8) as u8) + 4 * ((r / 8) as u8);
                assert_eq!(pair, expected, "portion pair at ({r},{c})");
                // Within a portion, even columns are the even register.
                assert_eq!(grid[r][c] % 2, (c % 2) as u8);
            }
        }
    }

    #[test]
    fn figure1_two_consecutive_elements_per_thread() {
        // Each thread controls two consecutive elements in each portion.
        let lanes = Fragment::lane_map(FragKind::Accumulator);
        for r in 0..FRAG_DIM {
            for c in (0..FRAG_DIM).step_by(2) {
                assert_eq!(lanes[r][c], lanes[r][c + 1], "pair split at ({r},{c})");
            }
        }
        // Within an 8x8 portion, lanes are rr*4 + cc/2 (row-major pairs).
        assert_eq!(lanes[0][0], 0);
        assert_eq!(lanes[0][2], 1);
        assert_eq!(lanes[0][7], 3);
        assert_eq!(lanes[1][0], 4);
        assert_eq!(lanes[7][6], 31);
        // Portions repeat the same thread layout.
        assert_eq!(lanes[8][8], 0);
        assert_eq!(lanes[15][14], 31);
    }

    #[test]
    fn algorithm3_register_indices() {
        // Algo 3 writes a_frag.x[0], x[1] to fill the top-left 8x8 and the
        // omitted code writes x[6], x[7] for the bottom-right.
        for rr in 0..8 {
            for cc in 0..8 {
                let (_, reg_tl) = Fragment::lane_reg(FragKind::MatrixA, rr, cc);
                assert!(reg_tl < 2, "TL must live in x[0..2], got {reg_tl}");
                let (_, reg_br) = Fragment::lane_reg(FragKind::MatrixA, 8 + rr, 8 + cc);
                assert!(reg_br >= 6, "BR must live in x[6..8], got {reg_br}");
            }
        }
    }

    #[test]
    fn algorithm2_vector_fetch_pattern() {
        // Algorithm 2: B_pos1 = (lid & 3) << 1, B_pos2 = B_pos1 + 1 — each
        // B-fragment thread holds rows 2*(lid%4) and 2*(lid%4)+1 of one
        // column in the TL portion.
        for lane in 0..LANES {
            let (r0, c0) = Fragment::element_of(FragKind::MatrixB, lane, 0);
            let (r1, c1) = Fragment::element_of(FragKind::MatrixB, lane, 1);
            assert_eq!(r0, 2 * (lane % 4), "lane {lane}");
            assert_eq!(r1, r0 + 1);
            assert_eq!(c0, c1);
            assert_eq!(c0, lane / 4);
        }
    }

    #[test]
    fn algorithm4_extraction_lanes() {
        // Algo 4: lanes with lid % 4 == 0 hold column 0 of the accumulator;
        // x[0] gives row lid/4 (TL), x[6] gives row 8 + lid/4 (BR).
        for lane in (0..LANES).step_by(4) {
            assert_eq!(
                Fragment::element_of(FragKind::Accumulator, lane, 0),
                (lane / 4, 0)
            );
            assert_eq!(
                Fragment::element_of(FragKind::Accumulator, lane, 6),
                (8 + lane / 4, 8)
            );
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = [0.0f32; 256];
        for (i, v) in m.iter_mut().enumerate() {
            *v = i as f32; // exactly representable in f16 up to 2048
        }
        for kind in [FragKind::MatrixA, FragKind::MatrixB, FragKind::Accumulator] {
            let mut f = Fragment::new(kind);
            f.load_matrix(&m);
            assert_eq!(f.store_matrix(), m, "{kind:?}");
        }
    }

    #[test]
    fn ab_writes_round_through_f16() {
        let mut a = Fragment::new(FragKind::MatrixA);
        a.set(0, 0, 0.1);
        assert_eq!(a.get(0, 0), F16::round_f32(0.1));
        assert_ne!(a.get(0, 0), 0.1);
        let mut acc = Fragment::new(FragKind::Accumulator);
        acc.set(0, 0, 0.1);
        assert_eq!(acc.get(0, 0), 0.1, "accumulator is full f32");
    }

    #[test]
    fn direct_register_write_equals_element_write() {
        let mut via_elem = Fragment::new(FragKind::MatrixA);
        via_elem.set(3, 5, 2.5);
        let mut via_reg = Fragment::new(FragKind::MatrixA);
        let (lane, reg) = Fragment::lane_reg(FragKind::MatrixA, 3, 5);
        via_reg.write_reg(lane, reg, 2.5);
        assert_eq!(via_elem, via_reg);
    }

    #[test]
    fn fill_sets_all_256_elements() {
        let mut f = Fragment::new(FragKind::Accumulator);
        f.fill(7.0);
        assert!(f.store_matrix().iter().all(|&v| v == 7.0));
    }
}
