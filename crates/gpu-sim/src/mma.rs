//! Matrix Multiply-Accumulate emulation.
//!
//! `D = A × B + C` on 16×16×16 fragments with f16 multiplicands and f32
//! accumulation — the numerical behaviour of `wmma::mma_sync` (inputs are
//! rounded to f16 when written into A/B fragments; products and sums are
//! f32). Also provides the `m8n8k4` primitive DASP builds on.

use crate::fragment::{FragKind, Fragment, FRAG_DIM};

/// `wmma::mma_sync(d, a, b, c)`: `D = A × B + C`.
///
/// Panics if the operand kinds are wrong, mirroring the type safety the
/// WMMA C++ API enforces at compile time.
pub fn mma_sync(d: &mut Fragment, a: &Fragment, b: &Fragment, c: &Fragment) {
    assert_eq!(a.kind, FragKind::MatrixA, "a must be a MatrixA fragment");
    assert_eq!(b.kind, FragKind::MatrixB, "b must be a MatrixB fragment");
    assert_eq!(c.kind, FragKind::Accumulator, "c must be an Accumulator fragment");
    assert_eq!(d.kind, FragKind::Accumulator, "d must be an Accumulator fragment");

    // A and B register values were already rounded to f16 on write; the
    // products and the accumulation below are f32, matching tensor-core
    // mixed precision.
    for r in 0..FRAG_DIM {
        for n in 0..FRAG_DIM {
            let mut acc = c.get(r, n);
            for k in 0..FRAG_DIM {
                acc += a.get(r, k) * b.get(k, n);
            }
            d.set(r, n, acc);
        }
    }
}

/// The Volta-native `mma.sync.m8n8k4` primitive (DASP's building block):
/// `D[8x8] = A[8x4] × B[4x8] + C[8x8]`, f16 inputs, f32 accumulate.
///
/// Operands are plain row-major arrays; DASP's row-bucketed kernels manage
/// their own packing.
pub fn mma_m8n8k4(a: &[f32; 32], b: &[f32; 32], c: &[f32; 64]) -> [f32; 64] {
    let mut d = [0.0f32; 64];
    for r in 0..8 {
        for n in 0..8 {
            let mut acc = c[r * 8 + n];
            for k in 0..4 {
                acc += crate::half::F16::round_f32(a[r * 4 + k])
                    * crate::half::F16::round_f32(b[k * 8 + n]);
            }
            d[r * 8 + n] = acc;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm_f16(a: &[f32; 256], b: &[f32; 256], c: &[f32; 256]) -> [f32; 256] {
        let mut d = [0.0f32; 256];
        let h = crate::half::F16::round_f32;
        for r in 0..16 {
            for n in 0..16 {
                let mut acc = c[r * 16 + n];
                for k in 0..16 {
                    acc += h(a[r * 16 + k]) * h(b[k * 16 + n]);
                }
                d[r * 16 + n] = acc;
            }
        }
        d
    }

    #[test]
    fn identity_times_matrix() {
        let mut a = Fragment::new(FragKind::MatrixA);
        for i in 0..16 {
            a.set(i, i, 1.0);
        }
        let mut b = Fragment::new(FragKind::MatrixB);
        let mut bm = [0.0f32; 256];
        for (i, v) in bm.iter_mut().enumerate() {
            *v = (i % 37) as f32; // exactly representable in f16
        }
        b.load_matrix(&bm);
        let c = Fragment::new(FragKind::Accumulator);
        let mut d = Fragment::new(FragKind::Accumulator);
        mma_sync(&mut d, &a, &b, &c);
        assert_eq!(d.store_matrix(), bm);
    }

    #[test]
    fn matches_naive_gemm_with_f16_rounding() {
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut am = [0.0f32; 256];
        let mut bm = [0.0f32; 256];
        let mut cm = [0.0f32; 256];
        for i in 0..256 {
            am[i] = next();
            bm[i] = next();
            cm[i] = next();
        }
        let (mut a, mut b, mut c) = (
            Fragment::new(FragKind::MatrixA),
            Fragment::new(FragKind::MatrixB),
            Fragment::new(FragKind::Accumulator),
        );
        a.load_matrix(&am);
        b.load_matrix(&bm);
        c.load_matrix(&cm);
        let mut d = Fragment::new(FragKind::Accumulator);
        mma_sync(&mut d, &a, &b, &c);
        let expect = naive_gemm_f16(&am, &bm, &cm);
        let got = d.store_matrix();
        for i in 0..256 {
            assert!((got[i] - expect[i]).abs() < 1e-6, "at {i}: {} vs {}", got[i], expect[i]);
        }
    }

    #[test]
    fn accumulator_c_is_added() {
        let a = Fragment::new(FragKind::MatrixA); // zero
        let b = Fragment::new(FragKind::MatrixB);
        let mut c = Fragment::new(FragKind::Accumulator);
        c.fill(3.25);
        let mut d = Fragment::new(FragKind::Accumulator);
        mma_sync(&mut d, &a, &b, &c);
        assert!(d.store_matrix().iter().all(|&v| v == 3.25));
    }

    #[test]
    fn kind_mismatch_panics() {
        let a = Fragment::new(FragKind::MatrixA);
        let b = Fragment::new(FragKind::MatrixB);
        let c = Fragment::new(FragKind::Accumulator);
        let mut d = Fragment::new(FragKind::Accumulator);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // b and a swapped.
            mma_sync(&mut d, &b, &a, &c);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn diagonal_block_structure_stays_independent() {
        // Spaden's trick: two 8x8 blocks on the fragment diagonal (TL, BR)
        // with zero off-diagonal portions multiply independently.
        let mut a = Fragment::new(FragKind::MatrixA);
        let mut b = Fragment::new(FragKind::MatrixB);
        // TL of A = 2*I, BR of A = 3*I.
        for i in 0..8 {
            a.set(i, i, 2.0);
            a.set(8 + i, 8 + i, 3.0);
        }
        // B columns: TL column 0 = [1..8], BR column 0 (global col 8) = [10..17].
        for k in 0..8 {
            for n in 0..8 {
                b.set(k, n, (k + 1) as f32);
                b.set(8 + k, 8 + n, (k + 10) as f32);
            }
        }
        let c = Fragment::new(FragKind::Accumulator);
        let mut d = Fragment::new(FragKind::Accumulator);
        mma_sync(&mut d, &a, &b, &c);
        for i in 0..8 {
            assert_eq!(d.get(i, 0), 2.0 * (i + 1) as f32, "TL row {i}");
            assert_eq!(d.get(8 + i, 8), 3.0 * (i + 10) as f32, "BR row {i}");
        }
    }

    #[test]
    fn m8n8k4_identity() {
        let mut a = [0.0f32; 32];
        for r in 0..4 {
            a[r * 4 + r] = 1.0;
        }
        let mut b = [0.0f32; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = i as f32;
        }
        let c = [0.0f32; 64];
        let d = mma_m8n8k4(&a, &b, &c);
        // Rows 0..4 of D = rows of B; rows 4..8 = 0 (A rows 4..8 are zero).
        for r in 0..4 {
            for n in 0..8 {
                assert_eq!(d[r * 8 + n], b[r * 8 + n]);
            }
        }
        for v in &d[32..] {
            assert_eq!(*v, 0.0);
        }
    }
}
