//! Deterministic fault injection for the simulated GPU.
//!
//! Real tensor-core SpMV pipelines fail *silently*: a flipped DRAM bit, a
//! corrupted fragment register or a lost atomic produces a wrong `y`, not a
//! crash. Hardware can't reproduce such events on demand; the functional
//! simulator can. This module draws faults from a counter-based RNG seeded
//! per `(config seed, launch, warp)`, so a whole program run is exactly
//! reproducible while distinct launches (e.g. ABFT recovery retries) see
//! independent fault sites.
//!
//! ## Fault model
//!
//! Four kinds, each with an independent rate in [`FaultConfig`]:
//!
//! * **Memory bit flip** — on a value-type sector read (f32 / f16), one
//!   loaded lane gets a high-order bit flipped. Rate is per coalesced
//!   sector, modelling DRAM/L2 upsets.
//! * **Stuck lane** — one lane of a value gather returns zero, modelling a
//!   dead datapath lane. Rate is per load instruction.
//! * **Fragment corruption** — after an MMA, one accumulator register of
//!   one lane gets a high bit flipped. Rate is per MMA issue.
//! * **Dropped atomic** — an atomic add issues (and is counted) but its
//!   effect is lost. Rate is per atomic lane-operation.
//!
//! Only *value* datapaths are corrupted (see `DeviceScalar::FLIPPABLE`):
//! flipping structural data — row pointers, bitmaps, block columns — models
//! control-flow corruption that no arithmetic checksum claims to cover and
//! that the host-side simulator cannot survive (out-of-bounds indexing).
//! Bit flips are restricted to high-order bits so an injected fault
//! perturbs the result above f16 accumulation noise — i.e. every injected
//! fault is *observable*, which is what the ABFT detection guarantee is
//! stated over.

/// Per-kind fault rates plus the RNG seed. All rates default to zero
/// (injection disabled, provably zero behaviour change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; same seed ⇒ identical fault sites for a fresh [`crate::Gpu`].
    pub seed: u64,
    /// Probability of a bit flip per value-type sector read.
    pub mem_bit_flip_rate: f64,
    /// Probability that an MMA result fragment loses one register.
    pub fragment_corrupt_rate: f64,
    /// Probability per value gather that one lane reads back zero.
    pub stuck_lane_rate: f64,
    /// Probability per atomic lane-op that the update is lost.
    pub dropped_atomic_rate: f64,
    /// Probability per value gather that one lane's index is perturbed
    /// past the end of the allocation (SimSan hazard injection: an
    /// out-of-bounds read, suppressed to a default value functionally).
    pub oob_read_rate: f64,
    /// Probability per value gather that one lane's index is perturbed
    /// into the allocated-but-uninitialized alignment tail.
    pub uninit_read_rate: f64,
    /// Probability per scatter that one lane's target is duplicated onto
    /// another lane's (an intra-warp write/write race).
    pub lane_race_rate: f64,
    /// Probability per atomic instruction that one lane's add is demoted
    /// to a plain store (an invalid atomic: the update to that element is
    /// not read-modify-write).
    pub invalid_atomic_rate: f64,
    /// Probability per fragment pair-write that one lane uses a register
    /// base inconsistent with the m16n16k16 mapping.
    pub frag_misuse_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// No injection: every rate zero.
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            mem_bit_flip_rate: 0.0,
            fragment_corrupt_rate: 0.0,
            stuck_lane_rate: 0.0,
            dropped_atomic_rate: 0.0,
            oob_read_rate: 0.0,
            uninit_read_rate: 0.0,
            lane_race_rate: 0.0,
            invalid_atomic_rate: 0.0,
            frag_misuse_rate: 0.0,
        }
    }

    /// The four silent-corruption fault kinds at the same `rate` (hazard
    /// injection stays off — this is the chaos-testing profile ABFT and
    /// the serving ladder are evaluated under).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            mem_bit_flip_rate: rate,
            fragment_corrupt_rate: rate,
            stuck_lane_rate: rate,
            dropped_atomic_rate: rate,
            ..FaultConfig::disabled()
        }
    }

    /// The five SimSan hazard-injection kinds at the same `rate` (the
    /// silent-corruption kinds stay off). Used to prove the sanitizer
    /// catches each seeded hazard class with the right report kind.
    pub fn hazards(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            oob_read_rate: rate,
            uninit_read_rate: rate,
            lane_race_rate: rate,
            invalid_atomic_rate: rate,
            frag_misuse_rate: rate,
            ..FaultConfig::disabled()
        }
    }

    /// True when any fault kind can fire. When false, the executor creates
    /// no injector at all — not a single RNG draw happens.
    pub fn enabled(&self) -> bool {
        self.mem_bit_flip_rate > 0.0
            || self.fragment_corrupt_rate > 0.0
            || self.stuck_lane_rate > 0.0
            || self.dropped_atomic_rate > 0.0
            || self.oob_read_rate > 0.0
            || self.uninit_read_rate > 0.0
            || self.lane_race_rate > 0.0
            || self.invalid_atomic_rate > 0.0
            || self.frag_misuse_rate > 0.0
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-warp fault RNG. Seeded from `(seed, launch, warp)` so results do not
/// depend on host threading or shard assignment.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    config: FaultConfig,
}

impl FaultInjector {
    /// Creates the injector for one warp of one launch.
    pub fn for_warp(config: FaultConfig, launch: u64, warp: u64) -> Self {
        let mut s = config.seed;
        let a = splitmix64(&mut s);
        let mut s2 = a ^ launch.wrapping_mul(0xA24B_AED4_963E_E407);
        let b = splitmix64(&mut s2);
        let mut state = b ^ warp.wrapping_mul(0x9FB2_1C65_1E98_DF25);
        splitmix64(&mut state); // decorrelate adjacent warps fully
        FaultInjector { state, config }
    }

    /// The rates this injector draws against.
    #[inline]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform integer in `[0, bound)` (multiply-shift; bias is irrelevant
    /// for fault-site selection).
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_default_and_inert() {
        let c = FaultConfig::default();
        assert!(!c.enabled());
        assert_eq!(c, FaultConfig::disabled());
        let mut inj = FaultInjector::for_warp(c, 0, 0);
        for _ in 0..100 {
            assert!(!inj.chance(c.mem_bit_flip_rate));
        }
    }

    #[test]
    fn uniform_enables_all_kinds() {
        let c = FaultConfig::uniform(7, 0.25);
        assert!(c.enabled());
        assert_eq!(c.mem_bit_flip_rate, 0.25);
        assert_eq!(c.dropped_atomic_rate, 0.25);
        assert_eq!(c.oob_read_rate, 0.0, "uniform leaves hazard injection off");
        assert_eq!(c.frag_misuse_rate, 0.0);
    }

    #[test]
    fn hazards_enables_only_hazard_kinds() {
        let c = FaultConfig::hazards(7, 0.25);
        assert!(c.enabled());
        assert_eq!(c.oob_read_rate, 0.25);
        assert_eq!(c.uninit_read_rate, 0.25);
        assert_eq!(c.lane_race_rate, 0.25);
        assert_eq!(c.invalid_atomic_rate, 0.25);
        assert_eq!(c.frag_misuse_rate, 0.25);
        assert_eq!(c.mem_bit_flip_rate, 0.0, "silent-corruption kinds stay off");
        assert_eq!(c.dropped_atomic_rate, 0.0);
    }

    #[test]
    fn same_seed_same_draws() {
        let c = FaultConfig::uniform(42, 0.5);
        let mut a = FaultInjector::for_warp(c, 3, 17);
        let mut b = FaultInjector::for_warp(c, 3, 17);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn launch_and_warp_decorrelate() {
        let c = FaultConfig::uniform(42, 0.5);
        let mut base = FaultInjector::for_warp(c, 0, 0);
        let mut other_launch = FaultInjector::for_warp(c, 1, 0);
        let mut other_warp = FaultInjector::for_warp(c, 0, 1);
        let same_l = (0..64).filter(|_| base.next_u64() == other_launch.next_u64()).count();
        let mut base2 = FaultInjector::for_warp(c, 0, 0);
        let same_w = (0..64).filter(|_| base2.next_u64() == other_warp.next_u64()).count();
        assert_eq!(same_l, 0);
        assert_eq!(same_w, 0);
    }

    #[test]
    fn chance_tracks_probability() {
        let c = FaultConfig::uniform(9, 1.0);
        let mut inj = FaultInjector::for_warp(c, 0, 0);
        let hits = (0..10_000).filter(|_| inj.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!inj.chance(0.0));
        assert!(inj.chance(1.0));
    }

    #[test]
    fn below_is_in_range() {
        let mut inj = FaultInjector::for_warp(FaultConfig::uniform(1, 1.0), 0, 0);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = inj.below(8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
