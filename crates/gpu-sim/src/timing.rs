//! Analytic roofline timing: turns [`KernelCounters`] into simulated time.
//!
//! The model takes the maximum over independent hardware pipes, each fed by
//! the counted events:
//!
//! * **DRAM**: total bytes over effective bandwidth — the binding limit for
//!   well-coalesced SpMV, and where bitBSR's traffic reduction shows up.
//! * **L2**: all sectors over L2 bandwidth.
//! * **Issue**: warp-instruction slots over aggregate scheduler
//!   throughput. Memory instructions cost one slot *per transaction*
//!   (sector), which models the transaction replays that make the paper's
//!   uncoalesced "CSR Warp16" strawman collapse (Section 5.3).
//! * **CUDA lanes**: arithmetic lane-operations over FP32 core throughput.
//! * **Tensor cores**: MMA count over per-shape MMA throughput; `m8n8k4`
//!   is fast on the V100 and crippled on the L40 (the DASP contrast).
//! * **Atomics**: global atomic throughput (the Gunrock limiter).
//! * **Shared memory**: staged bytes over shared-memory bandwidth (only
//!   the conventional-WMMA ablation exercises this).

use crate::config::GpuConfig;
use crate::counters::KernelCounters;

/// Issue-slot cost of one `m16n16k16` MMA (pipeline occupancy per warp).
const MMA16_ISSUE_CYCLES: u64 = 4;
/// Issue-slot cost of one `m8n8k4` MMA.
const MMA4_ISSUE_CYCLES: u64 = 1;
/// Issue-slot cost of one atomic operation.
const ATOMIC_ISSUE_CYCLES: u64 = 2;
/// Effective warp-instructions per SM per cycle. SMs have 4 schedulers,
/// but dependence-chained SpMV kernels sustain nowhere near 4 IPC; 2 is a
/// representative achieved rate for memory-heavy kernels.
const SCHEDULERS_PER_SM: f64 = 2.0;

/// Simulated execution time with a per-pipe breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime {
    /// Total simulated seconds (launch overhead + slowest pipe).
    pub seconds: f64,
    /// DRAM pipe seconds.
    pub t_dram: f64,
    /// L2 pipe seconds.
    pub t_l2: f64,
    /// Instruction-issue pipe seconds.
    pub t_issue: f64,
    /// CUDA-core arithmetic pipe seconds.
    pub t_cuda: f64,
    /// Tensor-core pipe seconds.
    pub t_tensor: f64,
    /// Atomic pipe seconds.
    pub t_atomic: f64,
    /// Shared-memory pipe seconds.
    pub t_smem: f64,
}

impl SimTime {
    /// Name of the pipe that bounds this kernel (diagnostics).
    pub fn bottleneck(&self) -> &'static str {
        let pipes = [
            (self.t_dram, "dram"),
            (self.t_l2, "l2"),
            (self.t_issue, "issue"),
            (self.t_cuda, "cuda"),
            (self.t_tensor, "tensor"),
            (self.t_atomic, "atomic"),
            (self.t_smem, "smem"),
        ];
        pipes
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"))
            .expect("non-empty")
            .1
    }

    /// Throughput in GFLOP/s counting the paper's convention of
    /// `2 * nnz` useful FLOPs per SpMV.
    pub fn gflops(&self, nnz: usize) -> f64 {
        2.0 * nnz as f64 / self.seconds / 1e9
    }
}

/// Estimates kernel time from counters under `config`.
pub fn estimate_time(c: &KernelCounters, config: &GpuConfig) -> SimTime {
    let t_dram = c.dram_bytes() as f64 / config.effective_dram_bw();
    let t_l2 = ((c.sectors_read + c.sectors_written) * 32) as f64 / config.l2_bw;

    // Every warp instruction occupies an issue slot; memory instructions
    // are replayed once per transaction, so we charge max(inst, sectors).
    let mem_issue = c.sectors_read.max(c.load_insts) + c.sectors_written.max(c.store_insts);
    let issue_cycles = c.cuda_ops
        + mem_issue
        + c.mma_m16n16k16 * MMA16_ISSUE_CYCLES
        + c.mma_m8n8k4 * MMA4_ISSUE_CYCLES
        + c.atomic_ops * ATOMIC_ISSUE_CYCLES;
    let issue_rate = config.num_sms as f64 * SCHEDULERS_PER_SM * config.clock_hz;
    let t_issue = issue_cycles as f64 / issue_rate;

    let t_cuda = (c.cuda_ops * 32) as f64 / config.cuda_lane_ops_per_s();
    let t_tensor = c.mma_m16n16k16 as f64 / config.mma_m16n16k16_per_s
        + c.mma_m8n8k4 as f64 / config.mma_m8n8k4_per_s;
    let t_atomic = c.atomic_ops as f64 / config.atomic_ops_per_s;
    let t_smem = c.smem_bytes as f64 / config.smem_bw;

    let body = t_dram
        .max(t_l2)
        .max(t_issue)
        .max(t_cuda)
        .max(t_tensor)
        .max(t_atomic)
        .max(t_smem);
    SimTime {
        seconds: config.launch_overhead_s + body,
        t_dram,
        t_l2,
        t_issue,
        t_cuda,
        t_tensor,
        t_atomic,
        t_smem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l40() -> GpuConfig {
        GpuConfig::l40()
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let t = estimate_time(&KernelCounters::default(), &l40());
        assert_eq!(t.seconds, l40().launch_overhead_s);
    }

    #[test]
    fn dram_bound_kernel() {
        let c = KernelCounters { dram_read_bytes: 864_000_000, ..Default::default() };
        let t = estimate_time(&c, &l40());
        // 864 MB at 864 GB/s * 0.8 efficiency = 1.25 ms.
        assert!((t.t_dram - 1.25e-3).abs() < 1e-6);
        assert_eq!(t.bottleneck(), "dram");
        assert!(t.seconds > 1.2e-3);
    }

    #[test]
    fn uncoalesced_loads_inflate_issue_time() {
        // Same instruction count, 32x the sectors: issue time must grow.
        let coalesced = KernelCounters {
            load_insts: 1_000_000,
            sectors_read: 4_000_000,
            ..Default::default()
        };
        let shattered = KernelCounters {
            load_insts: 1_000_000,
            sectors_read: 32_000_000,
            ..Default::default()
        };
        let tc = estimate_time(&coalesced, &l40());
        let ts = estimate_time(&shattered, &l40());
        assert!(ts.t_issue > 7.0 * tc.t_issue);
    }

    #[test]
    fn m8n8k4_fast_on_v100_slow_on_l40() {
        let c = KernelCounters { mma_m8n8k4: 10_000_000, ..Default::default() };
        let l40 = estimate_time(&c, &GpuConfig::l40());
        let v100 = estimate_time(&c, &GpuConfig::v100());
        assert!(
            l40.t_tensor > 5.0 * v100.t_tensor,
            "l40 {} vs v100 {}",
            l40.t_tensor,
            v100.t_tensor
        );
    }

    #[test]
    fn atomic_heavy_kernel_is_atomic_bound() {
        let c = KernelCounters { atomic_ops: 1_000_000_000, ..Default::default() };
        let t = estimate_time(&c, &l40());
        assert_eq!(t.bottleneck(), "atomic");
    }

    #[test]
    fn gflops_inverts_time() {
        let c = KernelCounters { dram_read_bytes: 6_912_000_000, ..Default::default() };
        let t = estimate_time(&c, &l40());
        let nnz = 10_000_000usize;
        let g = t.gflops(nnz);
        assert!((g - 2.0 * nnz as f64 / t.seconds / 1e9).abs() < 1e-9);
    }

    #[test]
    fn all_pipes_contribute_to_max() {
        let c = KernelCounters { smem_bytes: u64::MAX / 2, ..Default::default() };
        let t = estimate_time(&c, &l40());
        assert_eq!(t.bottleneck(), "smem");
    }
}
